"""ABL-6 — cost of the reliable-broadcast suite (EDCAN vs RELCAN vs TOTCAN).

The membership paper builds on the protocol suite of [18]; DESIGN.md lists
it as a substrate. This ablation measures what each protocol pays per
reliably-broadcast message in the failure-free case — the trade the suite
exists to offer (eager pays always, lazy pays on failure, total order pays
an accept) — and verifies delivery counts.
"""

from conftest import emit

from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.can.driver import CanStandardLayer
from repro.llc.edcan import Edcan
from repro.llc.relcan import Relcan
from repro.llc.totcan import Totcan
from repro.sim.clock import ms
from repro.sim.kernel import Simulator
from repro.sim.timers import TimerService
from repro.util.tables import render_table

NODES = 8
MESSAGES = 10


def _network():
    sim = Simulator()
    bus = CanBus(sim)
    layers, timers = {}, {}
    for node_id in range(NODES):
        controller = CanController(node_id)
        bus.attach(controller)
        layers[node_id] = CanStandardLayer(controller)
        timers[node_id] = TimerService(sim)
    return sim, bus, layers, timers


def run_edcan():
    sim, bus, layers, _ = _network()
    protocols = {n: Edcan(layers[n]) for n in layers}
    delivered = {n: [] for n in layers}
    for n, protocol in protocols.items():
        protocol.on_deliver(lambda s, r, d, n=n: delivered[n].append(r))
    for index in range(MESSAGES):
        protocols[index % NODES].broadcast(bytes([index]))
    sim.run()
    return bus.stats, delivered


def run_relcan():
    sim, bus, layers, timers = _network()
    protocols = {
        n: Relcan(layers[n], timers[n], confirm_timeout=ms(5)) for n in layers
    }
    delivered = {n: [] for n in layers}
    for n, protocol in protocols.items():
        protocol.on_deliver(lambda s, r, d, n=n: delivered[n].append(r))
    for index in range(MESSAGES):
        protocols[index % NODES].broadcast(bytes([index]))
    sim.run_until(ms(50))
    return bus.stats, delivered


def run_totcan():
    sim, bus, layers, timers = _network()
    protocols = {
        n: Totcan(
            layers[n], timers[n], sim, stability_delay=ms(2), discard_timeout=ms(20)
        )
        for n in layers
    }
    delivered = {n: [] for n in layers}
    for n, protocol in protocols.items():
        protocol.on_deliver(lambda s, r, d, n=n: delivered[n].append(r))
    for index in range(MESSAGES):
        protocols[index % NODES].broadcast(bytes([index]))
    sim.run_until(ms(60))
    return bus.stats, delivered


def bench_abl_broadcast_suite(benchmark):
    def sweep():
        return {
            "EDCAN (eager diffusion)": run_edcan(),
            "RELCAN (lazy two-phase)": run_relcan(),
            "TOTCAN (total order)": run_totcan(),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for label, (stats, delivered) in results.items():
        per_message = stats.physical_frames / MESSAGES
        rows.append(
            [
                label,
                stats.physical_frames,
                f"{per_message:.1f}",
                stats.busy_bits,
                min(len(log) for log in delivered.values()),
            ]
        )
    table = render_table(
        [
            "protocol",
            "physical frames",
            "frames/message",
            "bus bits",
            "min deliveries/node",
        ],
        rows,
        title=(
            f"ABL-6 — reliable broadcast suite, failure-free cost "
            f"({NODES} nodes, {MESSAGES} messages)"
        ),
    )
    emit("abl_broadcast_suite", table)

    for label, (stats, delivered) in results.items():
        for node, log in delivered.items():
            assert len(log) == MESSAGES, (label, node, len(log))

    edcan_frames = results["EDCAN (eager diffusion)"][0].physical_frames
    relcan_frames = results["RELCAN (lazy two-phase)"][0].physical_frames
    totcan_frames = results["TOTCAN (total order)"][0].physical_frames
    # EDCAN: message + clustered echo (~2/msg). RELCAN: message + confirm
    # (~2/msg, but the confirm is a short remote frame). TOTCAN: message +
    # accept data frame + its echo (~3/msg).
    assert edcan_frames <= 2 * MESSAGES + 2
    assert relcan_frames <= 2 * MESSAGES + 2
    assert totcan_frames >= edcan_frames
    # RELCAN's second frame is a remote frame: cheapest on the wire.
    relcan_bits = results["RELCAN (lazy two-phase)"][0].busy_bits
    totcan_bits = results["TOTCAN (total order)"][0].busy_bits
    assert relcan_bits < totcan_bits
