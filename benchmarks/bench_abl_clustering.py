"""ABL-4 — the wired-AND clustering of identical remote frames.

The FDA/membership design leans on CAN's wired-AND physical layer: the
simultaneous, identical failure-sign echoes of all recipients merge into a
single physical frame. This ablation disables clustering in the simulated
bus (counterfactual hardware) and measures the frame and bandwidth blow-up
of a failure-sign dissemination storm.
"""

from conftest import emit

from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.can.driver import CanStandardLayer
from repro.core.fda import FdaProtocol
from repro.sim.kernel import Simulator
from repro.util.tables import render_table

FAILURES = (17, 18, 19, 20)


def run(node_count: int, clustering: bool):
    sim = Simulator()
    bus = CanBus(sim, clustering=clustering)
    protocols = {}
    for node_id in range(node_count):
        controller = CanController(node_id)
        bus.attach(controller)
        protocols[node_id] = FdaProtocol(CanStandardLayer(controller))
    # Every node detects all four failures simultaneously — the harshest
    # dissemination storm the model allows (f = 4).
    for protocol in protocols.values():
        for failed in FAILURES:
            protocol.request(failed)
    sim.run()
    return bus.stats.physical_frames, bus.stats.busy_bits


def bench_abl_clustering(benchmark):
    def sweep():
        results = {}
        for node_count in (4, 8, 16):
            for clustering in (True, False):
                results[(node_count, clustering)] = run(node_count, clustering)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for (node_count, clustering), (frames, bits) in sorted(results.items()):
        rows.append(
            [node_count, "on" if clustering else "off (counterfactual)", frames, bits]
        )
    table = render_table(
        ["nodes", "wired-AND clustering", "physical frames", "bus bits"],
        rows,
        title="ABL-4 — clustering ablation: 4 concurrent failure-sign storms",
    )
    emit("abl_clustering", table)

    for node_count in (4, 8, 16):
        clustered_frames, clustered_bits = results[(node_count, True)]
        flat_frames, flat_bits = results[(node_count, False)]
        # With clustering the cost is per *failure*, not per detector.
        assert clustered_frames <= 2 * len(FAILURES)
        # Without it, every detector pays its own frame: linear blow-up.
        assert flat_frames >= node_count * len(FAILURES)
        assert flat_bits > 2 * clustered_bits
