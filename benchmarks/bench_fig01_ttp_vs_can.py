"""FIG-1 — the TTP vs standard CAN comparison table (paper Fig. 1).

A qualitative table: the reproduction regenerates every row from the
attribute model in :mod:`repro.analysis.comparison` and asserts the cells
that motivate the paper (CAN lacks membership, failure handling differs).
"""

from conftest import emit

from repro.analysis.comparison import fig1_rows
from repro.util.tables import render_table


def bench_fig01_table(benchmark):
    rows = benchmark(fig1_rows)
    table = render_table(
        ["Parameter", "TTP", "Standard CAN"],
        rows,
        title="Figure 1 — comparison of TTP and CAN (reproduced)",
    )
    emit("fig01_ttp_vs_can", table)
    cells = {row[0]: row for row in rows}
    assert cells["Membership service"][2] == "not provided"
    assert cells["Clock synchronization"][2] == "not provided"
    assert "masking" in cells["Omission handling"][1]
