"""Engineering benchmark — the overhauled hot paths vs the seed core.

Not a paper artifact: this drives the ``repro.perf`` runner through
pytest-benchmark so the fast-vs-legacy comparison lands next to the other
benchmark tables. The same measurements back ``repro bench`` and the
committed ``BENCH_core.json``.
"""

from conftest import emit

from repro.perf.bench import (
    bench_event_throughput,
    bench_frame_encoding,
    render_report,
    run_benchmarks,
)
from repro.perf.legacy import legacy_core


def bench_frame_encoding_fast_vs_reference(benchmark):
    result = benchmark.pedantic(
        bench_frame_encoding, kwargs={"quick": True, "repeats": 1}, rounds=1
    )
    # The table-driven path must beat the bit-list reference handily even
    # with a cold cache; the memoized steady state is faster still.
    assert result["speedup"] > 2.0
    assert result["cached_speedup"] > result["speedup"]


def bench_event_throughput_fast_vs_legacy(benchmark):
    result = benchmark.pedantic(
        bench_event_throughput, kwargs={"quick": True, "repeats": 1}, rounds=1
    )
    # Same scenario, same event count, different core: the tuple heap +
    # single-encode bus path must clearly outrun the seed core.
    assert result["speedup"] > 1.2


def bench_core_hotpath_report(benchmark):
    report = benchmark.pedantic(run_benchmarks, kwargs={"quick": True}, rounds=1)
    emit("bench_core_hotpath", render_report(report))
    assert set(report["results"]) == {
        "frame_encoding",
        "event_throughput",
        "campaign_wallclock",
    }


def bench_legacy_core_is_reentrant(benchmark):
    def nested():
        with legacy_core():
            with legacy_core():
                pass
        return True

    assert benchmark(nested)
