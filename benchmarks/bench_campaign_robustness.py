"""EXT-1 — randomized fault-injection campaign.

Beyond the paper's analytical evaluation: a statistical robustness campaign
over randomized scenarios — population, crash count, crash instants and
stochastic bus faults (within the model's degree philosophy) all drawn from
seeded RNG streams. For every scenario the online invariant monitors run
and the crash notification latency is recorded; the report gives the
distribution.

This is the evidence a dependability paper's reviewers ask for: not one
scenario that works, but a population of scenarios with zero violations
and a latency distribution that respects the analytical bound.

The campaign runs on :mod:`repro.campaign` (in-process, ``workers=0``, so
the benchmark times the scenarios themselves, not process management);
``python -m repro campaign --scenarios 30`` reproduces the same seeds,
verdicts and latencies on any worker count.
"""

from conftest import emit

from repro.campaign import CampaignReport, CampaignSpec, run_campaign

SCENARIOS = 30
SPEC = CampaignSpec(scenarios=SCENARIOS, seed=0)


def bench_campaign_robustness(benchmark):
    def campaign():
        return run_campaign(SPEC, workers=0)

    results = benchmark.pedantic(campaign, rounds=1, iterations=1)
    report = CampaignReport(SPEC, results)

    emit(
        "campaign_robustness",
        report.render(
            title=(
                "EXT-1 — randomized fault-injection campaign "
                f"({SCENARIOS} scenarios, {SPEC.node_min}-{SPEC.node_max} "
                f"nodes, {SPEC.crash_min}-{SPEC.crash_max} crashes, "
                "stochastic bus faults)"
            )
        ),
    )

    assert report.success, [r.detail for r in results if not r.ok]
    assert report.missed == 0
    assert report.latencies
    assert max(report.latencies) <= report.notification_bound
