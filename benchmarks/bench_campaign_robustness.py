"""EXT-1 — randomized fault-injection campaign.

Beyond the paper's analytical evaluation: a statistical robustness campaign
over randomized scenarios — population, crash count, crash instants and
stochastic bus faults (within the model's degree philosophy) all drawn from
seeded RNG streams. For every scenario the invariant is checked (all
correct full members agree on exactly the survivor set) and the crash
notification latency is recorded; the report gives the distribution.

This is the evidence a dependability paper's reviewers ask for: not one
scenario that works, but a population of scenarios with zero violations
and a latency distribution that respects the analytical bound.
"""

import random

from conftest import emit

from repro.analysis.latency import latency_bounds
from repro.can.errormodel import FaultInjector
from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import ms
from repro.util.tables import render_table
from repro.workloads.scenarios import detection_latencies
from repro.workloads.traffic import PeriodicSource

SCENARIOS = 30
CONFIG = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))


def run_one(seed: int):
    rng = random.Random(seed)
    node_count = rng.randint(6, 12)
    crash_count = rng.randint(1, 3)
    injector = FaultInjector(
        rng=random.Random(seed + 1),
        consistent_probability=rng.uniform(0.0, 0.02),
        inconsistent_probability=rng.uniform(0.0, 0.005),
    )
    net = CanelyNetwork(node_count=node_count, config=CONFIG, injector=injector)
    net.join_all()
    net.run_for(CONFIG.tjoin_wait + 5 * CONFIG.tm)
    if not net.views_agree() or len(net.member_views()) != node_count:
        return {"seed": seed, "bootstrap_failed": True}

    # Background traffic on a random half of the nodes.
    for node_id in rng.sample(range(node_count), node_count // 2):
        PeriodicSource(net.sim, net.node(node_id), period=ms(rng.randint(4, 9)))

    victims = rng.sample(range(node_count), crash_count)
    crash_times = {}
    base = net.sim.now
    for victim in victims:
        at = base + ms(rng.randint(0, 100))
        crash_times[victim] = at
        net.sim.schedule_at(at, net.node(victim).crash)
    net.run_for(ms(400))

    survivors = set(range(node_count)) - set(victims)
    agree = net.views_agree() and set(net.agreed_view()) == survivors
    latencies = detection_latencies(net, crash_times)
    return {
        "seed": seed,
        "bootstrap_failed": False,
        "nodes": node_count,
        "crashes": crash_count,
        "agree": agree,
        "latencies": [v for v in latencies.values() if v is not None],
        "missed": sum(1 for v in latencies.values() if v is None),
        "injected": injector.omissions_injected,
    }


def percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def bench_campaign_robustness(benchmark):
    def campaign():
        return [run_one(seed) for seed in range(SCENARIOS)]

    results = benchmark.pedantic(campaign, rounds=1, iterations=1)

    bootstrap_failures = [r for r in results if r["bootstrap_failed"]]
    completed = [r for r in results if not r["bootstrap_failed"]]
    violations = [r for r in completed if not r["agree"]]
    missed = sum(r["missed"] for r in completed)
    latencies = [v for r in completed for v in r["latencies"]]
    injected = sum(r["injected"] for r in completed)
    bound = latency_bounds(CONFIG).notification

    table = render_table(
        ["metric", "value"],
        [
            ["scenarios", SCENARIOS],
            ["bootstrap failures", len(bootstrap_failures)],
            ["agreement violations", len(violations)],
            ["crashes never notified", missed],
            ["faults injected (bus)", injected],
            ["detections measured", len(latencies)],
            ["latency p50", f"{percentile(latencies, 0.50) / ms(1):.1f} ms"],
            ["latency p95", f"{percentile(latencies, 0.95) / ms(1):.1f} ms"],
            ["latency max", f"{max(latencies) / ms(1):.1f} ms"],
            ["analytic bound", f"{bound / ms(1):.1f} ms"],
        ],
        title=(
            "EXT-1 — randomized fault-injection campaign "
            f"({SCENARIOS} scenarios, 6-12 nodes, 1-3 crashes, "
            "stochastic bus faults)"
        ),
    )
    emit("campaign_robustness", table)

    assert not bootstrap_failures
    assert not violations
    assert missed == 0
    assert latencies
    assert max(latencies) <= bound
