"""ABL-1 — FDA cost versus the inconsistent omission degree ``j``.

DESIGN.md calls out the FDA design choice: recipients echo the failure-sign
and keep the request alive until reliability is assured. This ablation
sweeps the number of inconsistent omissions injected into the failure-sign
dissemination and measures (a) physical frames consumed and (b) whether
every correct node was notified — including when the original detector
crashes mid-protocol.
"""

from conftest import emit

from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.can.driver import CanStandardLayer
from repro.can.errormodel import FaultInjector, FaultKind
from repro.can.identifiers import MessageType
from repro.core.fda import FdaProtocol
from repro.sim.kernel import Simulator
from repro.util.tables import render_table

NODES = 8
FAILED_NODE = 7


def run_fda(inconsistencies: int, crash_sender: bool):
    injector = FaultInjector()
    injector.fault_on_frame(
        lambda f: f.mid.mtype is MessageType.FDA,
        FaultKind.INCONSISTENT_OMISSION,
        accepting=[2],
        crash_sender=crash_sender,
        count=inconsistencies,
    )
    sim = Simulator()
    bus = CanBus(sim, injector=injector)
    notified = {}
    controllers = {}
    for node_id in range(NODES):
        controller = CanController(node_id)
        bus.attach(controller)
        controllers[node_id] = controller
        protocol = FdaProtocol(CanStandardLayer(controller))
        log = []
        protocol.on_failure_sign(log.append)
        notified[node_id] = log
        if node_id == 0:
            detector = protocol
    detector.request(FAILED_NODE)
    sim.run()
    correct = [
        n
        for n in range(NODES)
        if n != FAILED_NODE and not controllers[n].crashed
    ]
    all_notified = all(notified[n] == [FAILED_NODE] for n in correct)
    return bus.stats.physical_frames, all_notified


def bench_abl_fda_vs_inconsistency_degree(benchmark):
    def sweep():
        results = {}
        for j in range(4):
            for crash in (False, True):
                if crash and j == 0:
                    continue  # crash_sender needs a faulty transmission
                results[(j, crash)] = run_fda(j, crash)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [
            j,
            "yes" if crash else "no",
            frames,
            "all notified" if consistent else "MISSED",
        ]
        for (j, crash), (frames, consistent) in sorted(results.items())
    ]
    table = render_table(
        ["injected inconsistencies", "detector crashes", "physical frames", "outcome"],
        rows,
        title="ABL-1 — FDA dissemination cost vs inconsistent omissions (8 nodes)",
    )
    table += (
        "\nNote: the MISSED rows crash *every* holder of the failure-sign "
        "(each faulty transmission kills its only sender) from a single "
        "detector's invocation. The full protocol is immune: every node "
        "monitoring the failed node invokes FDA independently (Fig. 8, "
        "f10), so the sign has as many sources as surviving detectors."
    )
    emit("abl_fda", table)

    # Reliability holds whenever at least one sign holder survives — every
    # non-crash configuration and the single-crash configuration.
    for (j, crash), (frames, consistent) in results.items():
        if not crash or j <= 1:
            assert consistent, (j, crash)
    # Fault-free cost: original + one clustered echo.
    assert results[(0, False)][0] <= 2
    # Each inconsistency adds at most a couple of extra physical frames.
    assert results[(3, False)][0] <= 2 + 2 * 3
