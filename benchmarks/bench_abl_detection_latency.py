"""ABL-3 — failure detection latency vs the heartbeat period ``Thb``,
with implicit versus explicit life-signs.

Section 6.3: the detection latency is governed by ``Thb + Ttd``; implicit
life-signs (normal traffic) make the latency independent of explicit ELS
traffic. This ablation sweeps ``Thb`` and contrasts a silent network
(explicit life-signs only) with a chatty one (implicit only), reporting the
measured latency and the ELS frames consumed.
"""

from conftest import emit

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import ms
from repro.util.tables import render_table
from repro.workloads.scenarios import detection_latencies
from repro.workloads.traffic import PeriodicSource

NODES = 6
VICTIM = 4


def run(thb_ms: int, chatty: bool):
    config = CanelyConfig(
        capacity=16,
        tm=ms(max(50, 2 * thb_ms)),
        thb=ms(thb_ms),
        tjoin_wait=ms(max(150, 6 * thb_ms)),
    )
    net = CanelyNetwork(node_count=NODES, config=config)
    net.scenario().bootstrap()
    if chatty:
        for node_id in net.nodes:
            PeriodicSource(net.sim, net.node(node_id), period=ms(thb_ms) // 3)
    net.run_for(4 * config.thb)
    els_start = sum(node.detector.els_sent for node in net.nodes.values())
    crash_time = net.sim.now
    net.node(VICTIM).crash()
    net.run_for(4 * config.thb + 4 * config.ttd + ms(50))
    latency = detection_latencies(net, {VICTIM: crash_time})[VICTIM]
    els_spent = (
        sum(node.detector.els_sent for node in net.nodes.values()) - els_start
    )
    return latency, els_spent, config


def bench_abl_detection_latency(benchmark):
    def sweep():
        results = {}
        for thb_ms in (5, 10, 20, 40):
            for chatty in (False, True):
                results[(thb_ms, chatty)] = run(thb_ms, chatty)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for (thb_ms, chatty), (latency, els_spent, config) in sorted(results.items()):
        bound = (config.thb + config.ttd) / ms(1)
        rows.append(
            [
                thb_ms,
                "implicit (periodic traffic)" if chatty else "explicit (ELS)",
                f"{latency / ms(1):.2f} ms" if latency else "-",
                f"{bound:.0f} ms",
                els_spent,
            ]
        )
    table = render_table(
        ["Thb (ms)", "life-sign mode", "measured latency", "bound Thb+Ttd", "ELS frames"],
        rows,
        title="ABL-3 — detection latency vs heartbeat period (6 nodes)",
    )
    emit("abl_detection_latency", table)

    for (thb_ms, chatty), (latency, els_spent, config) in results.items():
        assert latency is not None, (thb_ms, chatty)
        # Fig. 8's bound: the crash is signalled within Thb + Ttd (plus the
        # FDA frame itself).
        assert latency <= config.thb + config.ttd + ms(2)
        if chatty:
            assert els_spent == 0  # implicit life-signs carried everything
        else:
            assert els_spent > 0
    # Latency scales with Thb (the knob the designer turns).
    silent = {thb: results[(thb, False)][0] for thb in (5, 10, 20, 40)}
    assert silent[5] < silent[40]
