"""Engineering benchmark — simulator throughput.

Not a paper artifact: this measures the discrete-event kernel itself, so
regressions in the simulation engine are visible. A 16-node CANELy network
with periodic traffic runs one simulated second; the metric is simulated
events per wall-second (pytest-benchmark reports the wall time).
"""

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import ms, sec
from repro.workloads.traffic import PeriodicSource

CONFIG = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))


def simulate_one_second():
    net = CanelyNetwork(node_count=16, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    for node_id in net.nodes:
        PeriodicSource(net.sim, net.node(node_id), period=ms(10))
    net.run_for(sec(1))
    assert net.views_agree()
    return net.sim.events_processed


def bench_simulator_throughput(benchmark):
    events = benchmark(simulate_one_second)
    # A simulated second of a 16-node network is tens of thousands of
    # events; the kernel must stay comfortably interactive.
    assert events > 10_000
