"""Engineering benchmark — indexed trace queries vs a linear scan.

Not a paper artifact: this guards the observability layer itself. A
100k-record trace with a realistic category mix is queried the way the
analysis readers do (``summarize``-style category selects and counts);
the indexed recorder must answer at least 10x faster than scanning the
whole record list, or long-campaign post-processing regresses back to
unusable.
"""

import time

from conftest import emit
from repro.sim.trace import TraceRecorder

TOTAL_RECORDS = 100_000

#: Category mix roughly matching a membership campaign: the bus dominates,
#: protocol events are sparse — exactly the regime where a scan wastes
#: almost all of its work.
CATEGORY_CYCLE = (
    ["bus.tx"] * 40
    + ["bus.deliver"] * 52
    + ["msh.view"] * 6
    + ["fda.nty", "node.crash"]
)


def build_trace() -> TraceRecorder:
    trace = TraceRecorder()
    cycle = len(CATEGORY_CYCLE)
    for i in range(TOTAL_RECORDS):
        trace.record(i * 1000, CATEGORY_CYCLE[i % cycle], node=i % 16, bits=100)
    return trace


def query_indexed(trace: TraceRecorder):
    crashes = trace.select(category="node.crash")
    views = trace.count("msh.view")
    signs = trace.select(category="fda.nty", node=3)
    return len(crashes), views, len(signs)


def query_scan(trace: TraceRecorder):
    crashes = [r for r in trace if r.category == "node.crash"]
    views = sum(1 for r in trace if r.category == "msh.view")
    signs = [
        r for r in trace if r.category == "fda.nty" and r.node == 3
    ]
    return len(crashes), views, len(signs)


def best_of(fn, trace, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn(trace)
        best = min(best, time.perf_counter() - started)
    return best


def bench_indexed_queries_beat_linear_scan():
    trace = build_trace()
    assert query_indexed(trace) == query_scan(trace)

    indexed = best_of(query_indexed, trace)
    scan = best_of(query_scan, trace)
    speedup = scan / indexed

    emit(
        "bench_trace_queries",
        "\n".join(
            [
                f"trace size          : {len(trace)} records",
                f"linear scan         : {scan * 1e3:8.3f} ms",
                f"indexed queries     : {indexed * 1e3:8.3f} ms",
                f"speedup             : {speedup:8.1f}x",
            ]
        ),
    )
    assert speedup >= 10, (
        f"indexed queries only {speedup:.1f}x faster than a scan"
    )
