"""EXT-2 — sequential vs parallel campaign wall-clock.

The campaign engine's reason to exist: the same seeded scenario population,
run once in-process (the sequential baseline) and once fanned out over a
worker pool. Determinism is asserted — identical verdicts and latencies
regardless of worker count — and the wall-clock speedup is reported.

The >2x speedup assertion only applies when the machine actually has >= 4
CPUs; on smaller containers the table still records the measurement, but a
CPU-bound pool cannot beat one core with arithmetic.
"""

import os
import time

from conftest import emit

from repro.campaign import CampaignSpec, run_campaign
from repro.util.tables import render_table

SCENARIOS = 24
WORKERS = 4
SPEC = CampaignSpec(scenarios=SCENARIOS, seed=7)


def _fingerprint(results):
    return [
        (r.index, r.seed, r.verdict, tuple(r.latencies), r.missed)
        for r in results
    ]


def bench_campaign_parallel(benchmark):
    start = time.perf_counter()
    sequential = run_campaign(SPEC, workers=0)
    sequential_s = time.perf_counter() - start

    def parallel():
        return run_campaign(SPEC, workers=WORKERS)

    start = time.perf_counter()
    results = benchmark.pedantic(parallel, rounds=1, iterations=1)
    parallel_s = time.perf_counter() - start

    speedup = sequential_s / parallel_s
    cpus = os.cpu_count() or 1
    emit(
        "campaign_parallel",
        render_table(
            ["metric", "value"],
            [
                ["scenarios", str(SCENARIOS)],
                ["workers", str(WORKERS)],
                ["cpus available", str(cpus)],
                ["sequential wall-clock", f"{sequential_s:.2f} s"],
                ["parallel wall-clock", f"{parallel_s:.2f} s"],
                ["speedup", f"{speedup:.2f}x"],
                [
                    "deterministic across worker counts",
                    str(_fingerprint(sequential) == _fingerprint(results)),
                ],
            ],
            title=(
                "EXT-2 — campaign engine: sequential vs parallel "
                f"({SCENARIOS} scenarios, {WORKERS} workers)"
            ),
        ),
    )

    assert _fingerprint(sequential) == _fingerprint(results)
    assert all(r.ok for r in results), [r.detail for r in results if not r.ok]
    if cpus >= 4:
        assert speedup > 2.0, f"only {speedup:.2f}x speedup on {cpus} CPUs"
