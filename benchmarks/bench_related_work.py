"""TXT-6.6 — the related-work comparison of Section 6.6.

CAL/CANopen node guarding (centralized master-slave) and OSEK NM (logical
ring) against CANELy's failure detection, on identical 8-node networks:

* detection latency — the paper quotes ~1 s for OSEK at TTyp = 100 ms,
  versus CANELy's tens of ms;
* steady-state bandwidth — OSEK's ring messages run continuously; CAL
  polls forever; CANELy's quiescent cost is b explicit life-signs per
  heartbeat period;
* the centralized single point of failure — CAL detects nothing once the
  master is gone.
"""

from conftest import emit

from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.can.driver import CanStandardLayer
from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.services.cal_nm import CalNodeGuarding
from repro.services.osek_nm import OsekNetworkManagement
from repro.sim.clock import ms, sec
from repro.sim.kernel import Simulator
from repro.sim.timers import TimerService
from repro.util.tables import render_table
from repro.workloads.scenarios import detection_latencies

NODES = 8
VICTIM = 5


def run_canely():
    config = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))
    net = CanelyNetwork(node_count=NODES, config=config)
    net.scenario().bootstrap()
    start_bits = net.bus.stats.busy_bits
    start_time = net.sim.now
    net.run_for(sec(2))
    steady_bits_per_s = (net.bus.stats.busy_bits - start_bits) / 2
    crash_time = net.sim.now
    net.node(VICTIM).crash()
    net.run_for(sec(2))
    latency = detection_latencies(net, {VICTIM: crash_time})[VICTIM]
    return latency, steady_bits_per_s


def _raw_network():
    sim = Simulator()
    bus = CanBus(sim)
    controllers, layers, timers = {}, {}, {}
    for node_id in range(NODES):
        controller = CanController(node_id)
        bus.attach(controller)
        controllers[node_id] = controller
        layers[node_id] = CanStandardLayer(controller)
        timers[node_id] = TimerService(sim)
    return sim, bus, controllers, layers, timers


def run_osek(t_typ=ms(100)):
    sim, bus, controllers, layers, timers = _raw_network()
    services = {
        node_id: OsekNetworkManagement(
            layers[node_id],
            timers[node_id],
            sim,
            ring_nodes=list(range(NODES)),
            t_typ=t_typ,
        )
        for node_id in range(NODES)
    }
    for service in services.values():
        service.start()
    sim.run_until(sec(2))
    start_bits = bus.stats.busy_bits
    start_time = sim.now
    sim.run_until(sim.now + sec(2))
    steady_bits_per_s = (bus.stats.busy_bits - start_bits) / 2
    # Worst case: the victim dies right after its own ring transmission.
    sends_before = services[VICTIM].ring_messages_sent
    while services[VICTIM].ring_messages_sent == sends_before:
        sim.run_until(sim.now + ms(10))
    controllers[VICTIM].crash()
    crash_time = sim.now
    sim.run_until(crash_time + sec(10))
    detected = services[0].detected.get(VICTIM)
    latency = None if detected is None else detected - crash_time
    return latency, steady_bits_per_s


def run_cal(guard_time=ms(50)):
    sim, bus, controllers, layers, timers = _raw_network()
    services = {
        node_id: CalNodeGuarding(
            layers[node_id],
            timers[node_id],
            sim,
            master_id=0,
            slave_ids=list(range(1, NODES)),
            guard_time=guard_time,
        )
        for node_id in range(NODES)
    }
    for service in services.values():
        service.start()
    sim.run_until(sec(2))
    start_bits = bus.stats.busy_bits
    sim.run_until(sim.now + sec(2))
    steady_bits_per_s = (bus.stats.busy_bits - start_bits) / 2
    controllers[VICTIM].crash()
    crash_time = sim.now
    sim.run_until(crash_time + sec(10))
    detected = services[0].detected.get(VICTIM)
    latency = None if detected is None else detected - crash_time
    return latency, steady_bits_per_s


def run_ttp(slot_time=ms(1)):
    """The TTP reference point: membership latency is one TDMA round."""
    from repro.services.ttp import TtpNetwork

    sim = Simulator()
    ttp = TtpNetwork(sim, NODES, slot_time)
    ttp.start()
    sim.run_until(sec(1))
    # Worst case: the victim dies right after its own slot.
    while (sim.now // slot_time) % NODES != (VICTIM + 1) % NODES:
        sim.run_until(sim.now + slot_time // 4)
    ttp.nodes[VICTIM].crash()
    crash_time = sim.now
    removals = []
    ttp.nodes[0].on_membership_change(
        lambda removed, view: removals.append((sim.now, removed))
    )
    sim.run_until(crash_time + sec(1))
    detected = next(at for at, removed in removals if removed == VICTIM)
    bits_per_s = ttp.bandwidth_frames_per_second() * 100  # ~100-bit frames
    return detected - crash_time, bits_per_s


def run_cal_master_dead():
    sim, bus, controllers, layers, timers = _raw_network()
    services = {
        node_id: CalNodeGuarding(
            layers[node_id],
            timers[node_id],
            sim,
            master_id=0,
            slave_ids=list(range(1, NODES)),
            guard_time=ms(50),
        )
        for node_id in range(NODES)
    }
    for service in services.values():
        service.start()
    sim.run_until(sec(2))
    controllers[0].crash()  # the master
    controllers[VICTIM].crash()
    sim.run_until(sim.now + sec(10))
    return all(VICTIM not in services[n].detected for n in range(1, NODES))


def bench_related_work_comparison(benchmark):
    def run_all():
        return {
            "canely": run_canely(),
            "osek": run_osek(),
            "cal": run_cal(),
            "ttp": run_ttp(),
            "cal_blind_after_master_crash": run_cal_master_dead(),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    canely_latency, canely_bits = results["canely"]
    osek_latency, osek_bits = results["osek"]
    cal_latency, cal_bits = results["cal"]
    ttp_latency, ttp_bits = results["ttp"]

    table = render_table(
        ["service", "detection latency", "steady traffic (bits/s)", "notes"],
        [
            [
                "TTP (1ms slots)",
                f"{ttp_latency / ms(1):.1f} ms",
                f"{ttp_bits:.0f}",
                "TDMA: constant traffic, slot-bound detection",
            ],
            [
                "CANELy (Thb=10ms)",
                f"{canely_latency / ms(1):.1f} ms",
                f"{canely_bits:.0f}",
                "distributed, consistent notification",
            ],
            [
                "OSEK NM (TTyp=100ms)",
                f"{osek_latency / ms(1):.1f} ms",
                f"{osek_bits:.0f}",
                "paper: 'order of one second'",
            ],
            [
                "CAL guarding (50ms slots)",
                f"{cal_latency / ms(1):.1f} ms",
                f"{cal_bits:.0f}",
                "master-only knowledge",
            ],
            [
                "CAL with crashed master",
                "never detects",
                "-",
                f"verified: {results['cal_blind_after_master_crash']}",
            ],
        ],
        title="Section 6.6 — related work comparison (8 nodes, 1 Mbps)",
    )
    emit("related_work", table)

    assert canely_latency is not None and canely_latency < ms(50)
    # TTP detection is bounded by one TDMA round (+1 slot) — both TTP and
    # CANELy land in the "tens of ms" class, as Fig. 11 reports.
    assert ttp_latency <= (NODES + 1) * ms(1)
    assert osek_latency is not None and ms(500) <= osek_latency <= sec(2)
    assert cal_latency is not None and cal_latency > canely_latency
    assert results["cal_blind_after_master_crash"]
    # The headline: an order of magnitude between CANELy and OSEK.
    assert osek_latency >= 10 * canely_latency
