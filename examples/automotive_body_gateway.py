#!/usr/bin/env python3
"""An automotive body network: cyclic traffic as implicit life-signs.

Twelve ECUs on one CAN bus — door modules, light controllers, climate,
a dashboard — exchanging their usual periodic frames. CANELy's failure
detection taps those frames through the ``can-data.nty`` extension, so the
membership service runs with *zero* explicit life-sign overhead for the
chatty ECUs; only the two quiet ECUs (the rain sensor reports sporadically)
ever transmit explicit life-signs.

Mid-drive, the left-door module browns out. Every surviving ECU learns of
it — consistently — within tens of milliseconds, while OSEK-style network
management (Section 6.6 of the paper) would have taken the best part of a
second.

Run with: python examples/automotive_body_gateway.py
"""

import random

from repro import CanelyConfig, CanelyNetwork
from repro.core.lifesign import explicit_lifesign_nodes
from repro.sim import format_time, ms
from repro.workloads import PeriodicSource, SporadicSource, TrafficSet

ECUS = {
    0: ("dashboard", ms(10)),
    1: ("door-left", ms(20)),
    2: ("door-right", ms(20)),
    3: ("lights-front", ms(25)),
    4: ("lights-rear", ms(25)),
    5: ("climate", ms(40)),
    6: ("seat-memory", ms(50)),
    7: ("mirror-ctrl", ms(50)),
    8: ("wiper", ms(30)),
    9: ("sunroof", ms(60)),
    10: ("rain-sensor", None),  # sporadic
    11: ("park-assist", None),  # sporadic
}

config = CanelyConfig(capacity=16, tm=ms(60), thb=ms(60), tjoin_wait=ms(200))
net = CanelyNetwork(node_count=len(ECUS), config=config)

net.scenario().bootstrap()
print(f"[{format_time(net.sim.now)}] body network up: "
      f"{sorted(net.agreed_view())}")

traffic = TrafficSet()
rng = random.Random(2024)
for node_id, (name, period) in ECUS.items():
    if period is not None:
        traffic.add(PeriodicSource(net.sim, net.node(node_id), period=period))
    else:
        traffic.add(
            SporadicSource(
                net.sim, net.node(node_id), mean_interarrival=ms(300), rng=rng
            )
        )

# The life-sign policy tells us which ECUs ever need explicit life-signs.
needs_els = explicit_lifesign_nodes(traffic.characterization(), config.thb)
print("ECUs relying on explicit life-signs:",
      [ECUS[n][0] for n in needs_els])

net.run_for(ms(500))
els_total = sum(node.detector.els_sent for node in net.nodes.values())
print(f"explicit life-signs so far: {els_total} "
      f"(implicit traffic carries the rest)")

# The left-door module browns out.
victim = 1
crash_time = net.sim.now
print(f"[{format_time(crash_time)}] {ECUS[victim][0]} loses power")

notified_at = {}
for node_id in (0, 5, 10):
    net.node(node_id).on_membership_change(
        lambda change, n=node_id: notified_at.setdefault(
            n, change.time
        )
    )

net.scenario().crash(victim).run_for(ms(200))
for node_id, at in sorted(notified_at.items()):
    print(f"  {ECUS[node_id][0]:<12} notified after "
          f"{format_time(at - crash_time)}")

assert net.views_agree()
print(f"[{format_time(net.sim.now)}] surviving view: "
      f"{[ECUS[n][0] for n in sorted(net.agreed_view())]}")
print(f"bus utilization so far: {net.bus.utilization() * 100:.1f}%")
