#!/usr/bin/env python3
"""Process group membership on top of the site membership service.

The paper motivates site membership as "a crucial assistant for process
group membership management". This example shows that layering: a small
factory cell where control *processes* — not just nodes — organize into
groups ("temperature-control", "logging"), several per node. When a node
crashes, the consistent site-level failure notification instantly retires
its processes from every group, at every survivor, in the same order.

Run with: python examples/process_groups.py
"""

from repro import CanelyNetwork
from repro.sim import format_time, ms

TEMP_CONTROL = 10
LOGGING = 20

net = CanelyNetwork(node_count=5)
net.scenario().bootstrap()
print(f"[{format_time(net.sim.now)}] sites: {sorted(net.agreed_view())}")

# Processes join their groups: node 0 runs a controller and a logger,
# node 1 a redundant controller, node 2 two loggers, node 3 a controller.
memberships = [
    (0, TEMP_CONTROL, 0),
    (0, LOGGING, 1),
    (1, TEMP_CONTROL, 0),
    (2, LOGGING, 0),
    (2, LOGGING, 1),
    (3, TEMP_CONTROL, 0),
]
for node_id, group, process_id in memberships:
    net.node(node_id).groups.join_group(group, process_id)
net.run_for(ms(20))


def show_groups(title):
    print(f"[{format_time(net.sim.now)}] {title}")
    observer = next(n for n in net.nodes.values() if not n.crashed)
    for group, name in ((TEMP_CONTROL, "temperature-control"), (LOGGING, "logging")):
        view = observer.groups.group_view(group)
        print(f"  {name:<20} v{view.version}: {sorted(view.processes)}")


show_groups("groups formed")

# Subscribe node 4 (a pure observer — it runs no group processes).
events = []
net.node(4).groups.on_group_change(
    lambda view: events.append((net.sim.now, view.group_id, sorted(view.processes)))
)

# Node 0 crashes: both its processes leave both groups, everywhere,
# through one consistent site-level notification.
crash_time = net.sim.now
print(f"[{format_time(crash_time)}] node 0 crashes "
      "(hosted one controller and one logger)")
net.scenario().crash(0).run_for(ms(100))
show_groups("after the crash")

for at, group, processes in events:
    name = "temperature-control" if group == TEMP_CONTROL else "logging"
    print(f"  observer notified at {format_time(at)}: {name} -> {processes}")

# The group views agree at every surviving member.
reference = {
    g: net.node(1).groups.group_view(g).processes for g in (TEMP_CONTROL, LOGGING)
}
for node_id in (2, 3, 4):
    for g in (TEMP_CONTROL, LOGGING):
        assert net.node(node_id).groups.group_view(g).processes == reference[g]
print("group views agree at every surviving site — done")
