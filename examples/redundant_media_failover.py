#!/usr/bin/env python3
"""Media redundancy: the "Columbus' egg" scheme (paper ref. [17]).

The CANELy system model *assumes* the channel never partitions; the media
redundancy scheme is what buys that assumption. This example walks the
failure combinations of a dual-media channel serving an 8-node network and
shows which ones the scheme masks, then demonstrates the protocol level
staying oblivious: a membership network keeps agreeing while media faults
come and go underneath.

Run with: python examples/redundant_media_failover.py
"""

from repro import CanelyNetwork
from repro.can.redundancy import MediaSet
from repro.sim import format_time, ms

NODES = list(range(8))

media = MediaSet(media_count=2)
print("dual-media channel, 8 nodes")


def report(event):
    partitioned = media.partitioned(NODES)
    healthy = media.healthy_media_count()
    print(f"  {event:<42} healthy media: {healthy}  "
          f"partitioned: {partitioned}")
    return partitioned


report("initial state")

# A cable cut on medium 0: masked.
media.fail_medium(0)
assert not report("medium 0 cable cut")

# Node 3's tap on medium 1 also fails: node 3 is now cut off — the only
# combination that defeats dual media is a double fault on one node's path.
media.fail_tap(1, node_id=3)
assert report("node 3's tap on medium 1 fails too")

# Repair the cable: node 3 is reachable again through medium 0.
media.restore_medium(0)
assert not report("medium 0 repaired")

media.restore_tap(1, node_id=3)
report("all repaired")

# The protocol level never noticed: run a membership network through the
# same storyline. The simulated bus models the *logical* channel the media
# set provides, which stayed available throughout (except for node 3's
# double-fault window, which the fault model excludes).
print()
print("protocol level across the same storyline:")
net = CanelyNetwork(node_count=8)
net.scenario().bootstrap()
print(f"[{format_time(net.sim.now)}] view: {sorted(net.agreed_view())}")
net.run_for(ms(300))
assert net.views_agree()
print(f"[{format_time(net.sim.now)}] view unchanged and agreed: "
      f"{sorted(net.agreed_view())}")
print("single-medium faults are invisible to CANELy — done")
