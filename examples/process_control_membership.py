#!/usr/bin/env python3
"""A process-control cell with membership churn and fault injection.

A distributed control application — PLCs, an operator station and a
maintenance laptop — where participants come and go: the laptop joins for
a diagnostic session and leaves again; a PLC crashes and is replaced; an
inconsistent omission hits the JOIN request of the replacement (the paper's
signature failure mode) and the Reception History Agreement still converges
every view.

Run with: python examples/process_control_membership.py
"""

from repro import CanelyConfig, CanelyNetwork
from repro.can.errormodel import FaultInjector, FaultKind
from repro.can.identifiers import MessageType
from repro.sim import format_time, ms

NAMES = {
    0: "plc-reactor",
    1: "plc-conveyor",
    2: "plc-packaging",
    3: "operator-station",
    4: "maintenance-laptop",
    5: "plc-reactor-spare",
}

# Script an inconsistent omission against the spare PLC's JOIN request:
# only the operator station perceives the first copy.
injector = FaultInjector()
injector.fault_on_frame(
    lambda frame: frame.mid.mtype is MessageType.JOIN and frame.mid.node == 5,
    FaultKind.INCONSISTENT_OMISSION,
    accepting=[3],
)

config = CanelyConfig(capacity=8, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))
net = CanelyNetwork(node_count=6, config=config, injector=injector)


def show(title):
    members = [NAMES[n] for n in sorted(net.agreed_view())]
    print(f"[{format_time(net.sim.now)}] {title}: {members}")


# Phase 1 — the permanent plant equipment boots.
net.scenario().bootstrap(nodes=(0, 1, 2, 3))
show("plant online")

# Phase 2 — the maintenance laptop joins for a diagnostic session.
net.scenario().join(4).run_for(ms(200))
show("diagnostic session")

# Phase 3 — the reactor PLC crashes mid-operation.
crash_time = net.sim.now
net.scenario().crash(0).run_for(ms(150))
show(f"after {NAMES[0]} crashed "
     f"(detected in {format_time(net.sim.now - crash_time)} window)")

# Phase 4 — the spare PLC joins; its JOIN frame suffers the scripted
# inconsistent omission, but CAN's retry plus RHA's intersection agreement
# admit it consistently (possibly one cycle later).
net.scenario().join(5).run_for(ms(300))
show("spare PLC integrated")

# Phase 5 — the laptop leaves; the view shrinks consistently.
net.scenario().leave(4).run_for(ms(200))
show("session closed")

assert net.views_agree()
expected = {1, 2, 3, 5}
assert set(net.agreed_view()) == expected, set(net.agreed_view())
print("membership history consistent at every correct node — done")
