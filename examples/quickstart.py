#!/usr/bin/env python3
"""Quickstart: a CANELy network in twenty lines.

Build a simulated CAN network running the CANELy protocol suite, let every
node join, crash one, and watch the membership service deliver a consistent
view of the survivors within tens of milliseconds.

Run with: python examples/quickstart.py
"""

from repro import CanelyNetwork
from repro.sim import format_time, ms

net = CanelyNetwork(node_count=8)

# Every node asks to join; the membership protocol bootstraps the view.
net.scenario().bootstrap()
print(f"[{format_time(net.sim.now)}] view after bootstrap: "
      f"{sorted(net.agreed_view())}")

# Subscribe to membership change notifications at node 0.
net.node(0).on_membership_change(
    lambda change: print(
        f"[{format_time(change.time)}] node 0 notified: "
        f"active={sorted(change.active)} failed={sorted(change.failed)}"
    )
)

# Node 5 crashes (fail-silent). Its silence is detected within
# Thb + Ttd, disseminated by the FDA micro-protocol, and removed from the
# view at the next membership cycle.
crash_time = net.sim.now
print(f"[{format_time(crash_time)}] node 5 crashes")
net.scenario().crash(5).run_until_settled()
print(f"[{format_time(net.sim.now)}] view after crash:     "
      f"{sorted(net.agreed_view())}")
assert net.views_agree(), "all correct members hold the same view"
print("all correct members agree — done")
