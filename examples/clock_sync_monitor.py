#!/usr/bin/env python3
"""Clock synchronization: tens-of-µs precision over CAN (paper ref. [15]).

Six nodes with drifting oscillators (up to ±100 ppm) run the CANELy clock
synchronization service alongside the membership stack. The script samples
the network-wide precision every resynchronization round and prints the
trajectory: free-running clocks would drift apart by ~200 µs/s, while the
synchronized ensemble stays within the paper's "tens of µs" claim — even
as one node crashes mid-run.

Run with: python examples/clock_sync_monitor.py
"""

import random

from repro import CanelyNetwork
from repro.services.clocksync import ClockSyncService, VirtualClock, precision
from repro.sim import format_time, ms, us

RESYNC_PERIOD = ms(100)

net = CanelyNetwork(node_count=6)
net.scenario().bootstrap()
print(f"[{format_time(net.sim.now)}] members: {sorted(net.agreed_view())}")

rng = random.Random(7)
clocks = {}
for node_id, node in net.nodes.items():
    drift = rng.uniform(-1e-4, 1e-4)
    clock = VirtualClock(drift=drift)
    clocks[node_id] = clock
    ClockSyncService(
        node.layer,
        node.timers,
        net.sim,
        clock,
        resync_period=RESYNC_PERIOD,
        reception_jitter_rng=random.Random(100 + node_id),
    ).start()
    print(f"  node {node_id}: oscillator drift {drift * 1e6:+.0f} ppm")

free_running = {n: VirtualClock(drift=c.drift) for n, c in clocks.items()}

print()
print("time      synced precision   free-running drift")
for sample in range(10):
    net.run_for(RESYNC_PERIOD)
    if sample == 5:
        net.node(4).crash()
        print(f"[{format_time(net.sim.now)}] node 4 crashed "
              "(excluded from the ensemble)")
        clocks.pop(4)
        free_running.pop(4)
    synced = precision(clocks, net.sim.now)
    free = precision(free_running, net.sim.now)
    print(f"{format_time(net.sim.now):>9}  {synced / us(1):>8.1f} us      "
          f"{free / us(1):>10.1f} us")

final = precision(clocks, net.sim.now)
assert final < us(60), "precision must stay in the tens of µs"
print()
print(f"final ensemble precision: {final / us(1):.1f} us — "
      "the Fig. 11 claim holds")
