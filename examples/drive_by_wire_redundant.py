#!/usr/bin/env python3
"""Drive-by-wire over redundant channels, with packed signals.

The most demanding CANELy deployment class: a steer-by-wire loop where the
steering-angle sensor, two actuator ECUs and a supervisor exchange packed
signal frames over **two replicated channels** (Fig. 11's optional channel
redundancy). Mid-drive:

1. channel A dies entirely (cable severed) — the control loop and the
   membership service continue on channel B, no reconfiguration needed;
2. the primary actuator ECU crashes — the supervisor learns within tens of
   milliseconds and fails over to the secondary actuator.

Run with: python examples/drive_by_wire_redundant.py
"""

from repro.core.config import CanelyConfig
from repro.core.stack import DualChannelNetwork
from repro.sim import format_time, ms
from repro.workloads.signals import MessageCodec, SignalSpec

SENSOR, ACTUATOR_A, ACTUATOR_B, SUPERVISOR = 0, 1, 2, 3

steering = MessageCodec(
    [
        SignalSpec("angle_deg", start_bit=0, width=16, scale=0.01, offset=-327.68),
        SignalSpec("rate_dps", start_bit=16, width=12, scale=0.5, signed=True),
        SignalSpec("valid", start_bit=28, width=1),
    ]
)

config = CanelyConfig(capacity=8, tm=ms(40), thb=ms(8), tjoin_wait=ms(130))
net = DualChannelNetwork(node_count=4, config=config)
net.scenario().bootstrap()
print(f"[{format_time(net.sim.now)}] cluster: {sorted(net.agreed_view())}")

# The supervisor decodes steering frames and tracks the active actuator.
received = []
active_actuator = [ACTUATOR_A]
net.node(SUPERVISOR).on_message(
    lambda sender, ref, data: received.append(
        (sender, steering.unpack(data)["angle_deg"])
    )
    if sender == SENSOR
    else None
)
net.node(SUPERVISOR).on_membership_change(
    lambda change: active_actuator.__setitem__(0, ACTUATOR_B)
    if ACTUATOR_A in change.failed
    else None
)


def sensor_tick(angle=[0.0]):
    if net.node(SENSOR).crashed:
        return
    angle[0] += 1.5
    net.node(SENSOR).send(
        steering.pack({"angle_deg": angle[0], "rate_dps": 15.0, "valid": 1})
    )
    net.sim.schedule(ms(5), sensor_tick)


sensor_tick()
net.run_for(ms(100))
print(f"[{format_time(net.sim.now)}] supervisor decoded "
      f"{len(received)} steering frames, last angle "
      f"{received[-1][1]:.2f} deg")

# Event 1: channel A is severed.
net.fail_channel(0)
frames_before = len(received)
net.run_for(ms(100))
print(f"[{format_time(net.sim.now)}] channel A severed — "
      f"{len(received) - frames_before} frames still delivered via B; "
      f"view {sorted(net.agreed_view())}")
assert len(received) > frames_before
assert net.views_agree()

# Event 2: the primary actuator crashes.
crash_time = net.sim.now
net.scenario().crash(ACTUATOR_A).run_for(ms(100))
print(f"[{format_time(net.sim.now)}] actuator A crashed; supervisor "
      f"failed over to actuator {'B' if active_actuator[0] == ACTUATOR_B else 'A'}")
assert active_actuator[0] == ACTUATOR_B
assert sorted(net.agreed_view()) == [SENSOR, ACTUATOR_B, SUPERVISOR]

print("drive-by-wire loop survived channel loss and actuator failover — done")
