"""Unit tests for bit-level CAN encoding: CRC-15, stuffing, frame lengths."""

import pytest

from repro.can.bitstream import (
    FRAME_TAIL_BITS,
    INTERFRAME_BITS,
    crc15,
    destuff,
    exact_frame_bits,
    frame_body_bits,
    stuff,
    worst_case_frame_bits,
)
from repro.errors import FrameError


def test_crc15_zero_input():
    assert crc15([0] * 10) == 0


def test_crc15_known_nonzero():
    value = crc15([1, 0, 1, 1, 0, 0, 1])
    assert 0 < value < 1 << 15


def test_crc15_detects_single_bit_flip():
    bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1]
    original = crc15(bits)
    for index in range(len(bits)):
        flipped = list(bits)
        flipped[index] ^= 1
        assert crc15(flipped) != original


def test_crc15_rejects_non_bits():
    with pytest.raises(FrameError):
        crc15([2])


def test_crc15_rejects_non_bits_anywhere_with_message():
    """Validation runs up front (not inside the CRC loop) but still names
    the offending value, wherever it appears in the input."""
    with pytest.raises(FrameError, match="bit must be 0 or 1, got 7"):
        crc15([0, 1, 0, 1, 7])
    with pytest.raises(FrameError, match="bit must be 0 or 1, got -1"):
        crc15([-1] + [0] * 20)


def test_stuff_inserts_after_five_equal():
    assert stuff([0, 0, 0, 0, 0]) == [0, 0, 0, 0, 0, 1]
    assert stuff([1, 1, 1, 1, 1]) == [1, 1, 1, 1, 1, 0]


def test_stuff_no_insertion_below_five():
    bits = [0, 0, 0, 0, 1, 1, 1, 1]
    assert stuff(bits) == bits


def test_stuff_bit_counts_toward_next_run():
    # 0x00 byte stream: 00000|1 00001... the stuff bit participates.
    stuffed = stuff([0] * 10)
    assert stuffed == [0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 1]


def test_destuff_inverts_stuff():
    for pattern in ([0] * 20, [1] * 17, [1, 0] * 8, [1, 1, 1, 0, 0, 0, 0, 0, 0]):
        assert destuff(stuff(pattern)) == list(pattern)


def test_frame_body_length_extended():
    # 54 + 8*dlc stuff-eligible bits (SOF..CRC) for the extended format.
    body = frame_body_bits(0x1234, b"\x01\x02", remote=False, extended=True)
    assert len(body) == 54 + 16


def test_frame_body_length_standard():
    body = frame_body_bits(0x123, b"", remote=True, extended=False)
    assert len(body) == 34


def test_standard_format_rejects_wide_identifier():
    with pytest.raises(FrameError):
        frame_body_bits(1 << 11, b"", remote=False, extended=False)


def test_remote_frame_with_data_rejected():
    with pytest.raises(FrameError):
        frame_body_bits(1, b"\x00", remote=True)


def test_oversized_data_rejected():
    with pytest.raises(FrameError):
        frame_body_bits(1, bytes(9), remote=False)


def test_exact_never_exceeds_worst_case():
    for dlc in range(9):
        for extended in (False, True):
            for filler in (0x00, 0xFF, 0x55, 0xA5):
                identifier = 0x155 if not extended else 0x15555555 & ((1 << 29) - 1)
                exact = exact_frame_bits(
                    identifier, bytes([filler] * dlc), False, extended
                )
                worst = worst_case_frame_bits(dlc, extended)
                assert exact <= worst


def test_worst_case_formula_standard():
    # Tindell-Burns: 8n + 47 + floor((34 + 8n - 1) / 4) including interframe.
    assert worst_case_frame_bits(8, extended=False) == 64 + 47 + (33 + 64) // 4


def test_worst_case_formula_extended():
    assert worst_case_frame_bits(0, extended=True) == 67 + 53 // 4


def test_worst_case_monotonic_in_dlc():
    lengths = [worst_case_frame_bits(dlc) for dlc in range(9)]
    assert lengths == sorted(lengths)
    assert len(set(lengths)) == 9


def test_interframe_flag():
    with_ifs = exact_frame_bits(1, b"", True, True, with_interframe=True)
    without = exact_frame_bits(1, b"", True, True, with_interframe=False)
    assert with_ifs - without == INTERFRAME_BITS


def test_worst_case_dlc_range():
    with pytest.raises(FrameError):
        worst_case_frame_bits(9)


def test_all_zero_identifier_max_stuffing():
    """An all-dominant prefix stuffs heavily — close to the worst case."""
    exact = exact_frame_bits(0, bytes(8), False, extended=True)
    worst = worst_case_frame_bits(8, extended=True)
    assert worst - exact < 15
