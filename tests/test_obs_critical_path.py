"""Critical-path latency attribution: segments must sum *exactly*.

The acceptance property of the span subsystem: for a seeded crash
scenario, the named critical-path segments are contiguous and their
integer-tick durations sum exactly to the latency the flat trace
measures — no rounding, no unattributed gap.
"""

import pytest

from repro.core.stack import CanelyNetwork
from repro.obs.critical_path import (
    CriticalPath,
    CriticalPathError,
    Segment,
    detection_path,
    notification_path,
    view_update_path,
)
from repro.sim.clock import ms
from repro.workloads.scenarios import detection_latencies


@pytest.fixture(scope="module")
def crashed():
    """(network, crashed node, crash time) for a seeded crash scenario."""
    net = CanelyNetwork(node_count=5, spans=True)
    scenario = net.scenario(seed=0).bootstrap()
    crash_time = net.sim.now + ms(2)
    scenario.crash(2, at=ms(2)).run_until_settled()
    return net, 2, crash_time


# -- exact-sum acceptance -------------------------------------------------------------


def test_detection_segments_sum_exactly_to_detection_latency(crashed):
    net, failed, crash_time = crashed
    path = detection_path(net.sim.spans, failed)
    # Measured from the flat trace, independently of the span tree.
    crash = net.sim.trace.select(category="node.crash", node=failed)[0]
    first_nty = min(
        record.time
        for record in net.sim.trace.select(category="fda.nty")
        if record.data["failed"] == failed
    )
    assert path.start == crash.time == crash_time
    assert path.end == first_nty
    assert sum(seg.duration for seg in path.segments) == path.total
    assert path.total == first_nty - crash.time


def test_notification_segments_sum_exactly_to_notification_latency(crashed):
    net, failed, crash_time = crashed
    path = notification_path(net.sim.spans, failed)
    measured = detection_latencies(net, {failed: crash_time})[failed]
    assert measured is not None
    assert sum(seg.duration for seg in path.segments) == path.total == measured


def test_view_update_segments_sum_exactly(crashed):
    net, failed, _crash_time = crashed
    path = view_update_path(net.sim.spans, failed)
    crash = net.sim.trace.select(category="node.crash", node=failed)[0]
    first_view = min(
        record.time
        for record in net.sim.trace.select(
            category="msh.view", start=crash.time
        )
        if failed not in record.data["members"]
    )
    assert path.end == first_view
    assert sum(seg.duration for seg in path.segments) == path.total
    # The view lands strictly after the immediate notification.
    assert path.total > notification_path(net.sim.spans, failed).total
    assert any(seg.name == "cycle-wait" for seg in path.segments)


def test_segments_are_contiguous_and_named(crashed):
    net, failed, _ = crashed
    for builder in (detection_path, notification_path, view_update_path):
        path = builder(net.sim.spans, failed)
        at = path.start
        for segment in path.segments:
            assert segment.start == at
            assert segment.duration > 0  # zero-length phases are dropped
            at = segment.end
        assert at == path.end
    detection = detection_path(net.sim.spans, failed)
    assert [seg.name for seg in detection.segments][0] == "surveillance-wait"


def test_paths_are_deterministic_across_same_seed_runs(crashed):
    net, failed, _ = crashed

    def rerun():
        other = CanelyNetwork(node_count=5, spans=True)
        other.scenario(seed=0).bootstrap().crash(2, at=ms(2)).run_until_settled()
        return detection_path(other.sim.spans, failed)

    first = detection_path(net.sim.spans, failed)
    second = rerun()
    assert first.segments == second.segments
    assert first.total == second.total


def test_observer_argument_selects_the_node(crashed):
    net, failed, _ = crashed
    path = notification_path(net.sim.spans, failed, observer=3)
    assert path.observer == 3
    assert sum(seg.duration for seg in path.segments) == path.total


def test_render_reports_total_and_percentages(crashed):
    net, failed, _ = crashed
    lines = detection_path(net.sim.spans, failed).render()
    assert f"detection of node {failed}" in lines[0]
    assert any("surveillance-wait" in line and "%" in line for line in lines[1:])


# -- construction invariants ----------------------------------------------------------


def test_gap_in_segments_is_rejected():
    with pytest.raises(CriticalPathError, match="gap"):
        CriticalPath(
            kind="detection",
            failed=1,
            observer=0,
            start=0,
            end=10,
            segments=(Segment("a", 0, 4), Segment("b", 6, 10)),
        )


def test_short_segments_are_rejected():
    with pytest.raises(CriticalPathError, match="ends at"):
        CriticalPath(
            kind="detection",
            failed=1,
            observer=0,
            start=0,
            end=10,
            segments=(Segment("a", 0, 4),),
        )


def test_missing_chain_raises_not_guesses():
    from repro.obs.spans import SpanTracer

    with pytest.raises(CriticalPathError, match="no 'fda.nty' span"):
        detection_path(SpanTracer(clock=lambda: 0), failed=1)
