"""Backend contract: registry, conformance of rival backends, shims.

The conformance block is the executable form of the
:class:`repro.core.backend.MembershipBackend` contract: every registered
backend — the paper's CANELy suite and the rival SWIM stack — must pass
the same membership-semantics tests (join/leave, view monotonicity,
change-callback ordering, halt/reset idempotence, metrics and span
emission). The remaining blocks pin the registry behaviour, the
golden-trace identity of ``backend="canely"`` with the pre-backend
default, and the deprecation shim on direct node construction.
"""

import warnings

import pytest

from repro.core.backend import (
    CanelyBackend,
    MembershipBackend,
    backend_names,
    register_backend,
    resolve_backend,
)
from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork, CanelyNode
from repro.errors import ConfigurationError
from repro.sim.clock import ms
from repro.sim.trace import record_to_dict
from repro.swim.node import SwimBackend

BACKENDS = ["canely", "swim"]


def _settled(backend, nodes=5, **kwargs):
    """A converged network of ``nodes`` full members on ``backend``."""
    net = CanelyNetwork(node_count=nodes, backend=backend, **kwargs)
    net.join_all()
    net.run_for(net.config.tjoin_wait + round(6 * net.config.tm))
    return net


def _run_detection(net):
    """Run long enough for any backend to detect and remove a crash."""
    net.run_for(ms(400))


# -- conformance: every backend passes the same membership semantics ----------


@pytest.mark.parametrize("backend", BACKENDS)
def test_join_converges_to_full_agreed_view(backend):
    net = _settled(backend)
    assert len(net.member_views()) == 5
    assert net.views_agree()
    assert sorted(net.agreed_view()) == [0, 1, 2, 3, 4]
    for node in net.nodes.values():
        assert node.is_member
        assert node.backend.is_member


@pytest.mark.parametrize("backend", BACKENDS)
def test_crash_is_removed_and_view_round_is_monotonic(backend):
    net = _settled(backend)
    observer = net.node(0)
    round_before = observer.view().round_index
    net.node(3).crash()
    _run_detection(net)
    assert sorted(net.agreed_view()) == [0, 1, 2, 4]
    assert observer.view().round_index > round_before


@pytest.mark.parametrize("backend", BACKENDS)
def test_leave_withdraws_the_node(backend):
    net = _settled(backend)
    net.node(2).leave()
    _run_detection(net)
    assert not net.node(2).is_member
    assert sorted(net.agreed_view()) == [0, 1, 3, 4]


@pytest.mark.parametrize("backend", BACKENDS)
def test_change_callbacks_arrive_in_time_order_with_the_failure(backend):
    net = _settled(backend)
    changes = []
    net.node(0).on_membership_change(changes.append)
    net.node(0).backend.on_change(lambda change: changes.append(change))
    net.node(4).crash()
    _run_detection(net)
    assert changes, "the survivor was never notified"
    times = [change.time for change in changes]
    assert times == sorted(times)
    assert any(4 in change.failed for change in changes)
    # node-API and backend-API listeners observe the same notifications.
    assert len(changes) % 2 == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_halt_and_reset_are_idempotent_and_rejoinable(backend):
    net = _settled(backend)
    victim = net.node(1)
    victim.crash()
    victim.backend.halt()  # second halt must be a no-op, not an error
    _run_detection(net)
    assert sorted(net.agreed_view()) == [0, 2, 3, 4]
    victim.recover()
    victim.backend.reset()  # second reset must also be safe
    victim.join()
    _run_detection(net)
    assert sorted(net.agreed_view()) == [0, 1, 2, 3, 4]


@pytest.mark.parametrize("backend", BACKENDS)
def test_metrics_hook_reports_integer_counters(backend):
    net = _settled(backend)
    net.node(3).crash()
    _run_detection(net)
    metrics = net.node(0).backend.metrics()
    assert metrics["view_round"] >= 1
    assert all(isinstance(value, int) for value in metrics.values())
    assert net.sim.metrics.counter("msh.change_notifications").value > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_span_emission_on_membership_change(backend):
    net = _settled(backend, spans=True)
    net.node(2).crash()
    _run_detection(net)
    assert net.sim.spans.select(name="msh.change")
    assert net.sim.spans.select(name="node.crash", node=2)


@pytest.mark.parametrize("backend", BACKENDS)
def test_describe_names_the_backend(backend):
    net = _settled(backend, nodes=3)
    description = net.node(0).backend.describe()
    assert description["backend"] == net.backend_name


# -- registry ------------------------------------------------------------------


def test_registry_lists_both_builtin_backends():
    names = backend_names()
    assert "canely" in names and "swim" in names


def test_resolve_backend_default_and_by_name():
    assert resolve_backend(None) is CanelyBackend
    assert resolve_backend("canely") is CanelyBackend
    assert resolve_backend("swim") is SwimBackend
    assert resolve_backend(SwimBackend) is SwimBackend


def test_resolve_backend_rejects_unknown_names():
    with pytest.raises(ConfigurationError):
        resolve_backend("raft")


def test_register_backend_rejects_name_collisions():
    register_backend(CanelyBackend)  # same class again: a no-op

    class Impostor(CanelyBackend):
        name = "canely"

    with pytest.raises(ConfigurationError):
        register_backend(Impostor)


def test_backend_classes_satisfy_the_contract():
    for name in backend_names():
        cls = resolve_backend(name)
        assert issubclass(cls, MembershipBackend)
        assert cls.name == name
        assert isinstance(cls.critical_path, bool)
        assert cls.default_config() is not None


# -- golden identity: backend="canely" is the pre-backend network -------------


def _crash_run(**kwargs):
    config = CanelyConfig(capacity=8, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))
    net = CanelyNetwork(node_count=6, config=config, **kwargs)
    net.join_all()
    net.run_for(ms(300))
    net.node(4).crash()
    net.run_for(ms(200))
    return net


def test_canely_backend_network_is_trace_identical_to_default():
    default = _crash_run()
    explicit = _crash_run(backend="canely")
    assert [record_to_dict(r) for r in default.sim.trace] == [
        record_to_dict(r) for r in explicit.sim.trace
    ]
    assert default.sim.events_processed == explicit.sim.events_processed
    assert default.bus.stats.busy_bits == explicit.bus.stats.busy_bits


def test_single_segment_network_has_no_gateway():
    net = _crash_run()
    assert net.gateway is None
    assert net.buses == (net.bus,)
    assert net.segment_of(0) == 0


# -- deprecation shims ---------------------------------------------------------


def test_direct_canely_node_construction_warns_at_the_caller():
    from repro.sim.kernel import Simulator
    from repro.can.bus import CanBus

    sim = Simulator()
    bus = CanBus(sim)
    config = CanelyConfig(capacity=8, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        CanelyNode(0, sim, bus, config)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    assert "CanelyBackend.build_node" in str(deprecations[0].message)
    # stacklevel=2 must attribute the warning to this file, not to
    # repro/core/stack.py.
    assert deprecations[0].filename == __file__


def test_backend_built_nodes_do_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        net = CanelyNetwork(node_count=3)
        CanelyBackend.build_node(
            5, net.sim, net.bus, net.config  # a spare stack on the same bus
        )


def test_pr4_scenario_wrapper_warns_at_the_caller():
    from repro.workloads.scenarios import schedule_crash

    net = CanelyNetwork(node_count=3)
    net.join_all()
    net.run_for(ms(300))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        schedule_crash(net, 1, at=net.sim.now + ms(10))
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    assert deprecations[0].filename == __file__
