"""Unit tests for declarative scenario scripts."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.workloads.script import ScenarioReport, ScenarioSpec, run_scenario

BASIC = {
    "nodes": 5,
    "config": {"tm_ms": 50, "thb_ms": 10},
    "traffic": [{"node": 0, "period_ms": 5}],
    "events": [{"at_ms": 100, "action": "crash", "node": 3}],
    "duration_ms": 600,
}


def test_from_dict_basic():
    spec = ScenarioSpec.from_dict(BASIC)
    assert spec.nodes == 5
    assert spec.config.tm == 50_000_000
    assert len(spec.events) == 1
    assert spec.events[0].action == "crash"


def test_from_json_roundtrip():
    spec = ScenarioSpec.from_json(json.dumps(BASIC))
    assert spec.nodes == 5


def test_events_sorted_by_time():
    raw = dict(BASIC)
    raw["events"] = [
        {"at_ms": 300, "action": "leave", "node": 1},
        {"at_ms": 100, "action": "crash", "node": 3},
    ]
    spec = ScenarioSpec.from_dict(raw)
    assert [event.action for event in spec.events] == ["crash", "leave"]


def test_validation_errors():
    with pytest.raises(ConfigurationError):
        ScenarioSpec.from_dict({"nodes": 0})
    with pytest.raises(ConfigurationError):
        ScenarioSpec.from_dict({"nodes": 3, "events": [{"action": "explode"}]})
    with pytest.raises(ConfigurationError):
        ScenarioSpec.from_dict(
            {"nodes": 3, "events": [{"action": "crash", "node": 9, "at_ms": 1}]}
        )
    with pytest.raises(ConfigurationError):
        ScenarioSpec.from_dict({"nodes": 3, "traffic": [{"node": 0}]})
    with pytest.raises(ConfigurationError):
        ScenarioSpec.from_dict({"nodes": 3, "duration_ms": -5})


def test_run_scenario_crash_report():
    report = run_scenario(ScenarioSpec.from_dict(BASIC))
    assert report.views_agree
    assert report.final_view == [0, 1, 2, 4]
    assert report.crash_latencies_ms[3] is not None
    assert report.crash_latencies_ms[3] < 30
    assert report.physical_frames > 0
    assert "ELS" in report.frames_by_type


def test_run_scenario_join_after_crash():
    raw = dict(BASIC)
    raw["events"] = [
        {"at_ms": 100, "action": "crash", "node": 3},
        {"at_ms": 400, "action": "join", "node": 3, "recover": True},
    ]
    raw["duration_ms"] = 1200
    report = run_scenario(ScenarioSpec.from_dict(raw))
    assert report.views_agree
    assert report.final_view == [0, 1, 2, 3, 4]


def test_run_scenario_leave():
    raw = dict(BASIC)
    raw["events"] = [{"at_ms": 100, "action": "leave", "node": 2}]
    report = run_scenario(ScenarioSpec.from_dict(raw))
    assert report.final_view == [0, 1, 3, 4]


def test_run_scenario_inaccessibility():
    raw = dict(BASIC)
    raw["events"] = [
        {"at_ms": 100, "action": "inaccessibility", "bits": 2880}
    ]
    report = run_scenario(ScenarioSpec.from_dict(raw))
    assert report.views_agree
    assert report.final_view == [0, 1, 2, 3, 4]  # the window is tolerated


def test_report_serializes():
    report = run_scenario(ScenarioSpec.from_dict(BASIC))
    encoded = json.dumps(report.to_dict())
    decoded = json.loads(encoded)
    assert decoded["views_agree"] is True


def test_cli_run(tmp_path, capsys):
    from repro.__main__ import main

    scenario = tmp_path / "scenario.json"
    scenario.write_text(json.dumps(BASIC))
    assert main(["run", str(scenario)]) == 0
    out = capsys.readouterr().out
    assert '"views_agree": true' in out


def test_dual_channel_scenario_with_channel_failure():
    raw = {
        "nodes": 4,
        "channels": 2,
        "config": {"tm_ms": 50, "thb_ms": 10},
        "events": [
            {"at_ms": 100, "action": "fail_channel", "channel": 0},
            {"at_ms": 200, "action": "crash", "node": 2},
        ],
        "duration_ms": 600,
    }
    report = run_scenario(ScenarioSpec.from_dict(raw))
    assert report.views_agree
    assert report.final_view == [0, 1, 3]
    assert report.crash_latencies_ms[2] is not None


def test_fail_channel_requires_dual():
    raw = dict(BASIC)
    raw["events"] = [{"at_ms": 1, "action": "fail_channel", "channel": 0}]
    with pytest.raises(ConfigurationError):
        ScenarioSpec.from_dict(raw)


def test_bad_channel_values_rejected():
    with pytest.raises(ConfigurationError):
        ScenarioSpec.from_dict({"nodes": 3, "channels": 3})
    raw = {
        "nodes": 3,
        "channels": 2,
        "events": [{"at_ms": 1, "action": "fail_channel", "channel": 5}],
    }
    with pytest.raises(ConfigurationError):
        ScenarioSpec.from_dict(raw)


def test_backend_and_segments_fields_run_end_to_end():
    raw = dict(BASIC)
    raw["backend"] = "swim"
    raw["segments"] = 2
    spec = ScenarioSpec.from_dict(raw)
    assert spec.backend == "swim"
    assert spec.segments == 2
    report = run_scenario(spec)
    assert report.views_agree
    assert report.final_view == [0, 1, 2, 4]


def test_backend_and_segments_validation():
    with pytest.raises(ConfigurationError):
        ScenarioSpec.from_dict({"nodes": 3, "backend": "raft"})
    with pytest.raises(ConfigurationError):
        ScenarioSpec.from_dict({"nodes": 3, "segments": 0})
    with pytest.raises(ConfigurationError):
        ScenarioSpec.from_dict({"nodes": 3, "segments": 4})
    # Dual-channel scenarios support only the default topology/backend.
    with pytest.raises(ConfigurationError):
        ScenarioSpec.from_dict(
            {"nodes": 3, "channels": 2, "backend": "swim"}
        )
    with pytest.raises(ConfigurationError):
        ScenarioSpec.from_dict({"nodes": 4, "channels": 2, "segments": 2})


def test_monitors_reject_non_canely_backends():
    raw = dict(BASIC)
    raw["backend"] = "swim"
    with pytest.raises(ConfigurationError):
        run_scenario(ScenarioSpec.from_dict(raw), monitors=True)
