"""Unit tests for generator-based simulation processes."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.sim.process import ProcessEnv, spawn


def test_timeout_sequencing():
    sim = Simulator()
    log = []

    def script(env):
        log.append(("start", env.now))
        yield env.timeout(100)
        log.append(("mid", env.now))
        yield env.timeout(50)
        log.append(("end", env.now))

    spawn(sim, script)
    sim.run()
    assert log == [("start", 0), ("mid", 100), ("end", 150)]


def test_until_condition():
    sim = Simulator()
    flag = []
    log = []

    def waiter(env):
        yield env.until(lambda: bool(flag), poll=10)
        log.append(env.now)

    spawn(sim, waiter)
    sim.schedule(95, lambda: flag.append(1))
    sim.run()
    assert log and 95 <= log[0] <= 110


def test_join_on_child_process():
    sim = Simulator()
    log = []

    def child(env):
        yield env.timeout(200)
        log.append(("child-done", env.now))

    def parent(env):
        handle = env.spawn(child)
        yield env.timeout(50)
        log.append(("parent-waiting", env.now))
        yield handle
        log.append(("parent-done", env.now))

    spawn(sim, parent)
    sim.run()
    assert log == [
        ("parent-waiting", 50),
        ("child-done", 200),
        ("parent-done", 200),
    ]


def test_join_on_finished_process_resumes_immediately():
    sim = Simulator()
    log = []

    def quick(env):
        yield env.timeout(1)

    def parent(env):
        handle = env.spawn(quick)
        yield env.timeout(100)
        yield handle  # already finished
        log.append(env.now)

    spawn(sim, parent)
    sim.run()
    assert log == [100]


def test_multiple_waiters():
    sim = Simulator()
    log = []

    def slow(env):
        yield env.timeout(300)

    def make_waiter(name, handle):
        def waiter(env):
            yield handle
            log.append((name, env.now))

        return waiter

    handle = spawn(sim, slow)
    spawn(sim, make_waiter("a", handle))
    spawn(sim, make_waiter("b", handle))
    sim.run()
    assert sorted(log) == [("a", 300), ("b", 300)]


def test_bad_yield_rejected():
    sim = Simulator()

    def broken(env):
        yield 42

    spawn(sim, broken)
    with pytest.raises(ConfigurationError):
        sim.run()


def test_non_generator_rejected():
    sim = Simulator()

    def not_a_generator(env):
        return None

    with pytest.raises(ConfigurationError):
        spawn(sim, not_a_generator)


def test_negative_timeout_rejected():
    env = ProcessEnv(Simulator())
    with pytest.raises(ConfigurationError):
        env.timeout(-1)
    with pytest.raises(ConfigurationError):
        env.until(lambda: True, poll=0)


def test_process_drives_canely_scenario():
    """The intended use: a readable scenario script over a live network."""
    from repro.core.config import CanelyConfig
    from repro.core.stack import CanelyNetwork
    from repro.sim.clock import ms

    config = CanelyConfig(capacity=16, tm=ms(50), tjoin_wait=ms(150))
    net = CanelyNetwork(node_count=4, config=config)
    checks = []

    def scenario(env):
        net.join_all()
        yield env.until(lambda: net.views_agree() and len(net.member_views()) == 4)
        checks.append(("formed", sorted(net.agreed_view())))
        net.node(2).crash()
        yield env.until(lambda: 2 not in net.node(0).view().members, poll=ms(1))
        checks.append(("detected", env.now))

    spawn(net.sim, scenario)
    net.sim.run_until(ms(800))
    assert checks[0] == ("formed", [0, 1, 2, 3])
    assert checks[1][0] == "detected"
