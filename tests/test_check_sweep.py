"""Parallel exploration and the mutation-style selftest.

``CheckSweep`` must satisfy the campaign engine's spec protocol so the
checker inherits process isolation and checkpoint/resume; ``explore`` must
minimize every violation and emit replayable artifacts; ``run_selftest``
must prove the whole pipeline catches a planted protocol bug.
"""

import os

import pytest

from repro.check import (
    CheckSweep,
    ScheduleSpace,
    explore,
    run_selftest,
)
from repro.check.selftest import (
    MAX_MINIMAL_FAULTS,
    MUTATIONS,
    selftest_sweep,
)
from repro.check.sweep import run_check_scenario
from repro.errors import CheckError

#: Small space so whole-population tests stay in smoke territory. One
#: non-member stays on the bus: planted FDA mutations only produce
#: duplicates when somebody learns the failure from the frame alone.
SMALL_SWEEP = CheckSweep(
    space=ScheduleSpace(
        nodes=4,
        members=3,
        crash_offsets_ms=(0.0,),
        frame_types=("FDA",),
        nth_frames=(0,),
    ),
    depth=1,
)


# -- CheckSweep: campaign spec protocol ---------------------------------------------


def test_sweep_population_is_memoized_and_indexed():
    population = SMALL_SWEEP.population()
    assert population is SMALL_SWEEP.population()  # memoized
    assert SMALL_SWEEP.scenarios == len(population)
    for index, schedule in enumerate(population):
        assert SMALL_SWEEP.schedule(index) == schedule
        assert SMALL_SWEEP.scenario_seed(index) == schedule.seed


def test_sweep_index_out_of_range():
    with pytest.raises(CheckError, match="outside population"):
        SMALL_SWEEP.schedule(SMALL_SWEEP.scenarios)


def test_sweep_validates_bounds():
    with pytest.raises(CheckError, match="depth"):
        CheckSweep(depth=-1)
    with pytest.raises(CheckError, match="samples"):
        CheckSweep(samples=-1)


def test_run_check_scenario_carries_check_payload():
    result = run_check_scenario(SMALL_SWEEP, 0)
    assert result.index == 0
    assert result.verdict == "ok"
    check = result.metrics["check"]
    assert len(check["fingerprint"]) == 64
    assert check["schedule"] == SMALL_SWEEP.schedule(0).to_dict()
    assert check["final_members"] == check["expected_members"]


# -- explore ------------------------------------------------------------------------


def test_explore_clean_code_reports_all_ok():
    report = explore(SMALL_SWEEP, workers=0)
    assert report.ok
    assert len(report.results) == SMALL_SWEEP.scenarios
    assert report.counterexamples == []
    assert report.counts() == {"ok": SMALL_SWEEP.scenarios}
    assert "ok=" in report.summary()


def test_explore_checkpoint_resume_reproduces_results(tmp_path):
    checkpoint = str(tmp_path / "check.jsonl")
    first = explore(SMALL_SWEEP, workers=0, checkpoint=checkpoint)
    resumed = explore(
        SMALL_SWEEP, workers=0, checkpoint=checkpoint, resume=True
    )
    assert [r.verdict for r in resumed.results] == [
        r.verdict for r in first.results
    ]
    assert [r.metrics["check"]["fingerprint"] for r in resumed.results] == [
        r.metrics["check"]["fingerprint"] for r in first.results
    ]


def test_explore_minimizes_and_writes_artifacts(tmp_path):
    artifact_dir = str(tmp_path / "artifacts")
    with MUTATIONS["fda-duplicate-delivery"].plant():
        report = explore(SMALL_SWEEP, workers=0, artifact_dir=artifact_dir)
    assert not report.ok
    assert report.counterexamples
    for counterexample in report.counterexamples:
        assert counterexample.result.violating
        assert counterexample.minimized.depth <= counterexample.schedule.depth
        assert os.path.exists(counterexample.artifact_path)
        assert f"#{counterexample.index}" in counterexample.describe()


# -- selftest -----------------------------------------------------------------------


def test_selftest_unknown_mutation_raises():
    with pytest.raises(CheckError, match="unknown mutation"):
        run_selftest("no-such-bug")


def test_selftest_sweep_is_small_but_real():
    sweep = selftest_sweep()
    assert 10 <= sweep.scenarios <= 200


@pytest.mark.parametrize("mutation", sorted(MUTATIONS))
def test_selftest_catches_planted_mutation(mutation, tmp_path):
    artifact = str(tmp_path / f"{mutation}.jsonl")
    report = run_selftest(mutation, artifact_path=artifact)
    assert report.passed, report.summary()
    assert report.violations_found > 0
    assert report.caught_by == MUTATIONS[mutation].expected_monitor
    assert 1 <= report.minimized_faults <= MAX_MINIMAL_FAULTS
    assert report.replay_ok
    assert report.clean_after_unplant
    assert os.path.exists(artifact)
    assert "PASS" in report.summary()
