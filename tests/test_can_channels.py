"""Unit tests for the optional channel redundancy layer."""

import pytest

from repro.can.bus import CanBus
from repro.can.channels import DualChannelLayer
from repro.can.controller import CanController
from repro.can.driver import CanStandardLayer
from repro.can.identifiers import MessageId, MessageType
from repro.core.config import CanelyConfig
from repro.core.stack import DualChannelNetwork
from repro.errors import ConfigurationError
from repro.sim.clock import ms, us
from repro.sim.kernel import Simulator

CONFIG = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))


def make_dual(node_count=3, window=us(500)):
    sim = Simulator()
    buses = (CanBus(sim), CanBus(sim))
    layers = {}
    for node_id in range(node_count):
        per_channel = []
        for bus in buses:
            controller = CanController(node_id)
            bus.attach(controller)
            per_channel.append(CanStandardLayer(controller))
        layers[node_id] = DualChannelLayer(sim, per_channel[0], per_channel[1], window)
    return sim, buses, layers


def test_single_delivery_despite_two_channels():
    sim, buses, layers = make_dual()
    received = []
    layers[1].add_data_ind(lambda mid, data: received.append((mid.ref, data)))
    layers[0].data_req(MessageId(MessageType.DATA, node=0, ref=3), b"x")
    sim.run()
    assert received == [(3, b"x")]  # the twin copy was suppressed
    assert buses[0].stats.physical_frames == 1
    assert buses[1].stats.physical_frames == 1


def test_single_confirmation():
    sim, buses, layers = make_dual()
    confirmed = []
    layers[0].add_data_cnf(lambda mid: confirmed.append(mid.ref))
    layers[0].data_req(MessageId(MessageType.DATA, node=0, ref=1), b"")
    sim.run()
    assert confirmed == [1]


def test_nty_fires_once():
    sim, buses, layers = make_dual()
    notified = []
    layers[2].add_data_nty(lambda mid: notified.append(mid.node))
    layers[0].data_req(MessageId(MessageType.DATA, node=0), b"z")
    sim.run()
    assert notified == [0]


def test_rtr_single_delivery():
    sim, buses, layers = make_dual()
    received = []
    layers[1].add_rtr_ind(lambda mid: received.append(mid.node), mtype=MessageType.ELS)
    layers[0].rtr_req(MessageId(MessageType.ELS, node=0))
    sim.run()
    assert received == [0]


def test_channel_failure_is_masked():
    sim, buses, layers = make_dual()
    received = []
    layers[1].add_data_ind(lambda mid, data: received.append(mid.ref))
    buses[0].inject_inaccessibility(2**40)  # channel 0 gone
    layers[0].data_req(MessageId(MessageType.DATA, node=0, ref=9), b"")
    sim.run_until(ms(5))
    assert received == [9]


def test_repeated_identifier_outside_window_delivers_again():
    sim, buses, layers = make_dual(window=us(500))
    received = []
    layers[1].add_rtr_ind(lambda mid: received.append(sim.now))
    layers[0].rtr_req(MessageId(MessageType.ELS, node=0))
    sim.run()
    sim.run_until(sim.now + ms(5))
    layers[0].rtr_req(MessageId(MessageType.ELS, node=0))
    sim.run()
    assert len(received) == 2  # legitimate repetition, not a twin


def test_abort_applies_to_both_channels():
    sim, buses, layers = make_dual()
    blocker = MessageId(MessageType.DATA, node=0, ref=0)
    target = MessageId(MessageType.DATA, node=0, ref=1)
    layers[0].data_req(blocker, b"")
    layers[0].data_req(target, b"")
    assert layers[0].has_pending(target)
    assert layers[0].abort_req(target)
    assert not layers[0].has_pending(target)


def test_facade_crash_silences_both_channels():
    sim, buses, layers = make_dual()
    received = []
    layers[1].add_data_ind(lambda mid, data: received.append(1))
    layers[0].controller.crash()
    assert layers[0].controller.crashed
    layers[0].data_req(MessageId(MessageType.DATA, node=0), b"")
    sim.run()
    assert received == []


def test_mismatched_node_ids_rejected():
    sim = Simulator()
    buses = (CanBus(sim), CanBus(sim))
    a = CanController(0)
    b = CanController(1)
    buses[0].attach(a)
    buses[1].attach(b)
    with pytest.raises(ConfigurationError):
        DualChannelLayer(sim, CanStandardLayer(a), CanStandardLayer(b), us(500))


def test_invalid_window_rejected():
    sim, buses, layers = make_dual()
    a = CanController(9)
    b = CanController(9)
    buses[0].attach(a)
    buses[1].attach(b)
    with pytest.raises(ConfigurationError):
        DualChannelLayer(sim, CanStandardLayer(a), CanStandardLayer(b), 0)


# -- full stack over dual channels ------------------------------------------------


def test_stack_bootstraps_over_dual_channels():
    net = DualChannelNetwork(node_count=5, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    assert net.views_agree()
    assert sorted(net.agreed_view()) == [0, 1, 2, 3, 4]


def test_stack_survives_total_channel_loss():
    """Fig. 11: channel redundancy — a whole channel dies, nobody notices."""
    net = DualChannelNetwork(node_count=5, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    net.fail_channel(0)
    net.run_for(ms(300))
    assert net.views_agree()
    assert sorted(net.agreed_view()) == [0, 1, 2, 3, 4]


def test_detection_still_works_on_surviving_channel():
    net = DualChannelNetwork(node_count=5, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    net.fail_channel(1)
    net.run_for(ms(100))
    net.node(3).crash()
    net.run_for(ms(150))
    assert net.views_agree()
    assert sorted(net.agreed_view()) == [0, 1, 2, 4]


def test_asymmetric_channel_fault_still_single_delivery():
    """An inconsistent omission on channel A only: channel B's copy covers
    it, and twin suppression still yields exactly one delivery."""
    from repro.can.errormodel import FaultInjector, FaultKind

    sim = Simulator()
    injector_a = FaultInjector()
    injector_a.fault_on_transmission(
        0, FaultKind.INCONSISTENT_OMISSION, accepting=[]
    )
    buses = (CanBus(sim, injector=injector_a), CanBus(sim))
    layers = {}
    for node_id in range(3):
        per_channel = []
        for bus in buses:
            controller = CanController(node_id)
            bus.attach(controller)
            per_channel.append(CanStandardLayer(controller))
        layers[node_id] = DualChannelLayer(
            sim, per_channel[0], per_channel[1], us(500)
        )
    received = []
    layers[1].add_data_ind(lambda mid, data: received.append(sim.now))
    layers[0].data_req(MessageId(MessageType.DATA, node=0, ref=1), b"x")
    sim.run_until(ms(5))
    # Channel A needed a retransmission; channel B delivered promptly; the
    # late A copy was suppressed as a twin (or fell outside the window and
    # would be a legitimate repeat — with a 500 µs window it is suppressed).
    assert len(received) in (1, 2)
    assert received[0] < us(400)


def test_consistent_error_on_one_channel_masked_by_other():
    from repro.can.errormodel import FaultInjector, FaultKind

    sim = Simulator()
    injector_a = FaultInjector()
    injector_a.fault_on_frame(
        lambda f: True, FaultKind.CONSISTENT_OMISSION, count=3
    )
    buses = (CanBus(sim, injector=injector_a), CanBus(sim))
    layers = {}
    for node_id in range(2):
        per_channel = []
        for bus in buses:
            controller = CanController(node_id)
            bus.attach(controller)
            per_channel.append(CanStandardLayer(controller))
        layers[node_id] = DualChannelLayer(
            sim, per_channel[0], per_channel[1], us(500)
        )
    received = []
    layers[1].add_data_ind(lambda mid, data: received.append(sim.now))
    layers[0].data_req(MessageId(MessageType.DATA, node=0, ref=2), b"y")
    sim.run_until(ms(5))
    assert received  # channel B delivered despite channel A's error burst
    assert received[0] < us(300)
