"""Unit tests for the node failure detection protocol (paper Fig. 8)."""

from repro.can.identifiers import MessageId, MessageType
from repro.core.config import CanelyConfig
from repro.core.failure_detector import FailureDetector
from repro.core.fda import FdaProtocol
from repro.sim.clock import ms

CONFIG = CanelyConfig(capacity=16, thb=ms(10), ttd=ms(1), tm=ms(50), tjoin_wait=ms(150))


def wire(net):
    detectors, failures = {}, {}
    for node_id, layer in net.layers.items():
        fda = FdaProtocol(layer)
        detector = FailureDetector(layer, net.timers[node_id], CONFIG, fda)
        log = []
        detector.on_failure(log.append)
        detectors[node_id] = detector
        failures[node_id] = log
    return detectors, failures


def start_all(detectors, nodes):
    for detector in detectors.values():
        for node_id in nodes:
            detector.start(node_id)


def test_local_timer_emits_explicit_lifesign(raw_bus):
    net = raw_bus(2)
    detectors, _ = wire(net)
    detectors[0].start(0)
    net.sim.run_until(ms(25))
    assert detectors[0].els_sent >= 2  # one per Thb of silence


def test_els_restarts_remote_timers_no_false_detection(raw_bus):
    net = raw_bus(3)
    detectors, failures = wire(net)
    start_all(detectors, [0, 1, 2])
    net.sim.run_until(ms(100))
    for log in failures.values():
        assert log == []


def test_implicit_lifesign_data_traffic_suppresses_els(raw_bus):
    """Section 6.1/6.3: periodic data faster than Thb needs no ELS."""
    net = raw_bus(2)
    detectors, _ = wire(net)
    detectors[0].start(0)
    detectors[1].start(0)

    def periodic(ref=[0]):
        net.layers[0].data_req(
            MessageId(MessageType.DATA, node=0, ref=ref[0] % 65536), b""
        )
        ref[0] += 1
        net.sim.schedule(ms(5), periodic)

    periodic()
    net.sim.run_until(ms(100))
    assert detectors[0].els_sent == 0


def test_crash_detected_within_bound(raw_bus):
    net = raw_bus(3)
    detectors, failures = wire(net)
    start_all(detectors, [0, 1, 2])
    net.sim.run_until(ms(30))
    net.controllers[2].crash()
    crash_time = net.sim.now
    net.sim.run_until(ms(100))
    assert failures[0] == [2]
    assert failures[1] == [2]
    # Detection within Thb + Ttd of the crash (plus FDA dissemination).
    detection = [
        r.time
        for r in net.sim.trace.select(category="bus.tx")
        if r.data["mid"].mtype.name == "FDA"
    ][0]
    assert detection - crash_time <= CONFIG.thb + CONFIG.ttd + ms(1)


def test_notification_consistent_at_all_correct_nodes(raw_bus):
    net = raw_bus(5)
    detectors, failures = wire(net)
    start_all(detectors, range(5))
    net.sim.run_until(ms(30))
    net.controllers[4].crash()
    net.sim.run_until(ms(120))
    for node_id in range(4):
        assert failures[node_id] == [4]


def test_stop_cancels_surveillance(raw_bus):
    net = raw_bus(3)
    detectors, failures = wire(net)
    start_all(detectors, [0, 1, 2])
    net.sim.run_until(ms(30))
    for detector in detectors.values():
        detector.stop(2)
    net.controllers[2].crash()
    net.sim.run_until(ms(150))
    for node_id in (0, 1):
        assert failures[node_id] == []


def test_monitoring_introspection(raw_bus):
    net = raw_bus(2)
    detectors, _ = wire(net)
    detectors[0].start(1)
    assert detectors[0].monitoring(1)
    assert detectors[0].monitored_nodes == [1]
    detectors[0].stop(1)
    assert not detectors[0].monitoring(1)


def test_failure_sign_stops_surveillance_of_failed_node(raw_bus):
    net = raw_bus(3)
    detectors, failures = wire(net)
    start_all(detectors, [0, 1, 2])
    net.sim.run_until(ms(30))
    net.controllers[2].crash()
    net.sim.run_until(ms(120))
    assert not detectors[0].monitoring(2)
    # No repeated notifications afterwards.
    net.sim.run_until(ms(300))
    assert failures[0] == [2]


def test_activity_of_unmonitored_node_ignored(raw_bus):
    net = raw_bus(3)
    detectors, failures = wire(net)
    # Only monitor node 1; node 2 traffic must not create timers.
    detectors[0].start(1)
    net.layers[2].data_req(MessageId(MessageType.DATA, node=2), b"")
    net.sim.run_until(ms(5))
    assert detectors[0].monitored_nodes == [1]


def test_remote_timer_longer_than_local(raw_bus):
    """Fig. 8 a01-a05: remote surveillance adds the Ttd bound."""
    net = raw_bus(2)
    detectors, failures = wire(net)
    detectors[1].start(0)  # remote surveillance of a silent node
    net.sim.run_until(CONFIG.thb + ms(0.5))
    # Not yet: the remote timer is Thb + Ttd.
    fda_frames = [
        r
        for r in net.sim.trace.select(category="bus.tx")
        if r.data["mid"].mtype.name == "FDA"
    ]
    assert fda_frames == []
    net.sim.run_until(CONFIG.thb + CONFIG.ttd + ms(1))
    assert failures[1] == [0]
