"""ScenarioBuilder: fluent API semantics and golden-trace equivalence.

The equivalence tests are the deprecation contract: each of the three
golden scenarios (crash detection, join/leave churn, inconsistent
omissions) runs once through the deprecated free functions and once
through the fluent builder, and the complete observable fingerprint —
every trace record in order, bus statistics, event count and every node's
view — must match exactly. Anyone refactoring the wrappers or the builder
trips these before they ship a behaviour change.
"""

import contextlib
import warnings
from types import SimpleNamespace

import pytest

from repro.can.errormodel import FaultInjector, FaultKind
from repro.can.identifiers import MessageId, MessageType
from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork, DualChannelNetwork
from repro.errors import ScenarioError
from repro.sim.clock import ms
from repro.sim.trace import record_to_dict
from repro.workloads import FrameMatch, ScenarioBuilder
from repro.workloads.scenarios import (
    bootstrap_network,
    schedule_crash,
    schedule_leave,
)

CONFIG = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))


def fingerprint(net):
    """Everything observable about a finished run, in comparable form."""
    views = {}
    for node in net.correct_nodes():
        view = node.view()
        views[node.node_id] = (sorted(view.members), view.round_index)
    return {
        "trace": [record_to_dict(record) for record in net.sim.trace],
        "events": net.sim.events_processed,
        "now": net.sim.now,
        "physical_frames": net.bus.stats.physical_frames,
        "error_frames": net.bus.stats.error_frames,
        "busy_bits": net.bus.stats.busy_bits,
        "bits_by_type": dict(net.bus.stats.bits_by_type),
        "views": views,
    }


def _assert_identical(legacy, fluent):
    assert legacy["events"] == fluent["events"]
    assert legacy["now"] == fluent["now"]
    assert legacy["physical_frames"] == fluent["physical_frames"]
    assert legacy["error_frames"] == fluent["error_frames"]
    assert legacy["busy_bits"] == fluent["busy_bits"]
    assert legacy["bits_by_type"] == fluent["bits_by_type"]
    assert legacy["views"] == fluent["views"]
    assert len(legacy["trace"]) == len(fluent["trace"])
    for legacy_rec, fluent_rec in zip(legacy["trace"], fluent["trace"]):
        assert legacy_rec == fluent_rec


@contextlib.contextmanager
def _silence_deprecations():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        yield


# -- golden-trace equivalence: legacy helpers vs builder ---------------------------


def test_crash_detection_equivalent():
    """Golden scenario 1: 10 nodes bootstrap, node 7 crashes."""

    def legacy():
        net = CanelyNetwork(node_count=10, config=CONFIG)
        with _silence_deprecations():
            bootstrap_network(net)
            schedule_crash(net, 7, net.sim.now + ms(20))
        net.run_for(ms(200))
        assert net.views_agree()
        return fingerprint(net)

    def fluent():
        net = CanelyNetwork(node_count=10, config=CONFIG)
        net.scenario().bootstrap().crash(7, at=ms(20)).run_for(ms(200))
        assert net.views_agree()
        return fingerprint(net)

    _assert_identical(legacy(), fluent())


def test_join_leave_churn_equivalent():
    """Golden scenario 2: staggered leaves exercise RHA and the cycle."""

    def legacy():
        net = CanelyNetwork(node_count=6, config=CONFIG)
        with _silence_deprecations():
            bootstrap_network(net)
            schedule_leave(net, 2, net.sim.now + ms(10))
            schedule_leave(net, 5, net.sim.now + ms(60))
        net.run_for(ms(300))
        assert net.views_agree()
        return fingerprint(net)

    def fluent():
        net = CanelyNetwork(node_count=6, config=CONFIG)
        (
            net.scenario()
            .bootstrap()
            .leave(2, at=ms(10))
            .leave(5, at=ms(60))
            .run_for(ms(300))
        )
        assert net.views_agree()
        return fingerprint(net)

    _assert_identical(legacy(), fluent())


def test_inconsistent_omissions_equivalent():
    """Golden scenario 3: FDA traffic hit by an inconsistent omission."""

    def legacy():
        net = CanelyNetwork(
            node_count=8, config=CONFIG, injector=FaultInjector()
        )
        with _silence_deprecations():
            bootstrap_network(net)
        net.bus.injector.fault_on_frame(
            lambda f: f.mid.mtype is MessageType.FDA,
            FaultKind.INCONSISTENT_OMISSION,
            accepting=[2],
        )
        with _silence_deprecations():
            schedule_crash(net, 6, net.sim.now)
        net.run_for(ms(300))
        assert net.views_agree()
        return fingerprint(net)

    def fluent():
        net = CanelyNetwork(
            node_count=8, config=CONFIG, injector=FaultInjector()
        )
        (
            net.scenario()
            .bootstrap()
            .omit(
                frame=FrameMatch(mtype="FDA"),
                inconsistent=True,
                accepting=[2],
            )
            .crash(6)
            .run_for(ms(300))
        )
        assert net.views_agree()
        return fingerprint(net)

    _assert_identical(legacy(), fluent())


# -- builder semantics -------------------------------------------------------------


def test_builder_chains_and_returns_self():
    net = CanelyNetwork(node_count=4, config=CONFIG)
    builder = net.scenario()
    assert builder.bootstrap() is builder
    assert builder.crash(3) is builder
    assert builder.run_for(ms(100)) is builder
    assert builder.network is net
    assert sorted(net.agreed_view()) == [0, 1, 2]


def test_bootstrap_subset_leaves_late_joiners():
    net = CanelyNetwork(node_count=5, config=CONFIG)
    net.scenario().bootstrap(nodes=(0, 1, 2))
    assert sorted(net.agreed_view()) == [0, 1, 2]
    net.scenario().join(3).run_for(ms(300))
    assert sorted(net.agreed_view()) == [0, 1, 2, 3]


def test_run_until_settled_converges_after_crash():
    net = CanelyNetwork(node_count=5, config=CONFIG)
    net.scenario().bootstrap().crash(4, at=ms(30)).run_until_settled()
    assert net.node(4).crashed
    assert sorted(net.agreed_view()) == [0, 1, 2, 3]
    assert net.views_agree()


def test_run_until_settled_raises_with_seed():
    net = CanelyNetwork(node_count=4, config=CONFIG)
    builder = net.scenario(seed=99)
    builder.bootstrap()
    # A crash scheduled beyond the settling horizon keeps the view churning
    # forever from the settler's perspective? No — instead force failure by
    # asking for impossible stability within zero cycles of budget.
    builder.crash(3)
    with pytest.raises(ScenarioError) as excinfo:
        builder.run_until_settled(max_cycles=1, stable_cycles=5)
    assert "seed=99" in str(excinfo.value)


def test_negative_offset_rejected():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    with pytest.raises(ScenarioError, match="in the past"):
        net.scenario().crash(1, at=-ms(5))


def test_omit_requires_exactly_one_selector():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    with pytest.raises(ScenarioError, match="frame/tx_index"):
        net.scenario().omit()
    with pytest.raises(ScenarioError, match="frame/tx_index"):
        net.scenario().omit(frame=FrameMatch(mtype="FDA"), tx_index=3)


def test_omit_accepting_needs_inconsistent():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    with pytest.raises(ScenarioError, match="accepting"):
        net.scenario().omit(frame=FrameMatch(mtype="FDA"), accepting=[1])


def test_builder_works_on_dual_channel_network():
    net = DualChannelNetwork(node_count=4, config=CONFIG)
    net.scenario().bootstrap().crash(2, at=ms(20)).run_for(ms(200))
    assert sorted(net.agreed_view()) == [0, 1, 3]


# -- FrameMatch --------------------------------------------------------------------


def test_frame_match_rejects_unknown_type():
    with pytest.raises(ScenarioError, match="unknown message type"):
        FrameMatch(mtype="BOGUS")
    with pytest.raises(ScenarioError, match="nth"):
        FrameMatch(mtype="FDA", nth=-1)


def test_frame_match_predicate_counts_nth():
    match = FrameMatch(mtype="ELS", node=1, nth=1).predicate()
    els1 = SimpleNamespace(mid=MessageId(MessageType.ELS, node=1))
    els2 = SimpleNamespace(mid=MessageId(MessageType.ELS, node=2))
    fda1 = SimpleNamespace(mid=MessageId(MessageType.FDA, node=1))
    assert not match(fda1)  # wrong type
    assert not match(els2)  # wrong node
    assert not match(els1)  # first match skipped (nth=1)
    assert match(els1)  # second match selected
    assert match(els1)  # and it stays armed for the injector's count


def test_frame_match_is_plain_data():
    """FrameMatch must serialize (it crosses process boundaries)."""
    import pickle

    match = FrameMatch(mtype="FDA", node=3, nth=2)
    assert pickle.loads(pickle.dumps(match)) == match


# -- analytic idle-skip in the settling loop ----------------------------------


class _StubNet:
    """Minimal network: a quiescent bus over a bare kernel, instrumented to
    count how many cycles are actually *simulated* (vs leapt)."""

    def __init__(self, quiescent=True):
        from repro.sim.kernel import Simulator

        self.sim = Simulator()
        self.bus = SimpleNamespace(quiescent=quiescent)
        self.config = SimpleNamespace(tm=ms(50))
        self.simulated_cycles = 0

    def run_cycles(self, cycles):
        self.simulated_cycles += cycles
        self.sim.run_until(self.sim.now + round(cycles * self.config.tm))

    def member_views(self):
        return {0: (0,)}


def test_run_until_settled_leaps_silent_cycles():
    net = _StubNet()
    ScenarioBuilder(net).run_until_settled(max_cycles=60, stable_cycles=5)
    # One probe cycle simulated for the first snapshot; once the queue is
    # provably silent the remaining stability window is leapt analytically.
    assert net.simulated_cycles < 5
    assert net.sim.now >= round(5 * net.config.tm)


def test_run_until_settled_leap_respects_pending_deadline():
    """The leap may only cover cycles that end strictly before the next
    kernel event: a deadline 3.5 cycles out caps the jump at 3 cycles."""
    net = _StubNet()
    cycle = round(net.config.tm)
    deadline = round(3.5 * cycle)
    fired = []
    net.sim.schedule(deadline, lambda: fired.append(net.sim.now))
    builder = ScenarioBuilder(net)
    probe = builder._silent_cycles_ahead(cycle, 60)
    assert probe == 3
    builder.run_until_settled(max_cycles=60, stable_cycles=10)
    assert fired == [deadline]  # the event still fired, at its exact deadline


def test_run_until_settled_never_leaps_busy_bus():
    net = _StubNet(quiescent=False)
    ScenarioBuilder(net).run_until_settled(max_cycles=60, stable_cycles=3)
    # Every cycle of the stability window was simulated for real.
    assert net.simulated_cycles == 4


def test_run_until_settled_idle_skip_off_simulates_everything():
    net = _StubNet()
    ScenarioBuilder(net).run_until_settled(
        max_cycles=60, stable_cycles=5, idle_skip=False
    )
    assert net.simulated_cycles == 6
