"""Shared fixtures for the CANELy reproduction test suite."""

from __future__ import annotations

import pytest

from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.can.driver import CanStandardLayer
from repro.sim.kernel import Simulator
from repro.sim.timers import TimerService


class RawBus:
    """A bare CAN network: simulator + bus + standard layers, no protocols."""

    def __init__(self, node_count: int, injector=None, clustering: bool = True):
        self.sim = Simulator()
        self.bus = CanBus(self.sim, injector=injector, clustering=clustering)
        self.controllers = {}
        self.layers = {}
        self.timers = {}
        for node_id in range(node_count):
            controller = CanController(node_id)
            self.bus.attach(controller)
            self.controllers[node_id] = controller
            self.layers[node_id] = CanStandardLayer(controller)
            self.timers[node_id] = TimerService(self.sim)


@pytest.fixture
def raw_bus():
    """Factory for bare CAN networks."""

    def factory(node_count: int = 4, injector=None, clustering: bool = True):
        return RawBus(node_count, injector=injector, clustering=clustering)

    return factory
