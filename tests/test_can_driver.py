"""Unit tests for the CAN standard layer (paper Fig. 4)."""

from repro.can.identifiers import MessageId, MessageType


def test_data_req_delivers_ind_everywhere(raw_bus):
    net = raw_bus(3)
    seen = []
    net.layers[2].add_data_ind(lambda mid, data: seen.append((mid.node, data)))
    net.layers[0].data_req(MessageId(MessageType.DATA, node=0), b"\x07")
    net.sim.run()
    assert seen == [(0, b"\x07")]


def test_ind_includes_own_transmissions(raw_bus):
    net = raw_bus(2)
    own = []
    net.layers[0].add_data_ind(lambda mid, data: own.append(mid.node))
    net.layers[0].data_req(MessageId(MessageType.DATA, node=0), b"")
    net.sim.run()
    assert own == [0]


def test_nty_fires_without_data_before_ind(raw_bus):
    net = raw_bus(2)
    events = []
    net.layers[1].add_data_nty(lambda mid: events.append(("nty", mid.node)))
    net.layers[1].add_data_ind(lambda mid, data: events.append(("ind", mid.node)))
    net.layers[0].data_req(MessageId(MessageType.DATA, node=0), b"x")
    net.sim.run()
    assert events == [("nty", 0), ("ind", 0)]


def test_nty_not_fired_for_remote_frames(raw_bus):
    net = raw_bus(2)
    notified = []
    net.layers[1].add_data_nty(lambda mid: notified.append(mid))
    net.layers[0].rtr_req(MessageId(MessageType.ELS, node=0))
    net.sim.run()
    assert notified == []


def test_rtr_ind_and_cnf(raw_bus):
    net = raw_bus(2)
    events = []
    net.layers[1].add_rtr_ind(lambda mid: events.append(("ind", mid.mtype)))
    net.layers[0].add_rtr_cnf(lambda mid: events.append(("cnf", mid.mtype)))
    net.layers[0].rtr_req(MessageId(MessageType.ELS, node=0))
    net.sim.run()
    assert ("ind", MessageType.ELS) in events
    assert ("cnf", MessageType.ELS) in events


def test_data_cnf_only_at_sender(raw_bus):
    net = raw_bus(3)
    confirmations = []
    net.layers[0].add_data_cnf(lambda mid: confirmations.append(0))
    net.layers[1].add_data_cnf(lambda mid: confirmations.append(1))
    net.layers[0].data_req(MessageId(MessageType.DATA, node=0), b"")
    net.sim.run()
    assert confirmations == [0]


def test_mtype_filter(raw_bus):
    net = raw_bus(2)
    only_rha = []
    net.layers[1].add_data_ind(
        lambda mid, data: only_rha.append(mid.mtype), mtype=MessageType.RHA
    )
    net.layers[0].data_req(MessageId(MessageType.DATA, node=0), b"")
    net.layers[0].data_req(MessageId(MessageType.RHA, node=0), b"")
    net.sim.run()
    assert only_rha == [MessageType.RHA]


def test_abort_req_cancels_pending(raw_bus):
    net = raw_bus(2)
    seen = []
    net.layers[1].add_data_ind(lambda mid, data: seen.append(mid.ref))
    blocker = MessageId(MessageType.DATA, node=0, ref=0)
    target = MessageId(MessageType.DATA, node=0, ref=1)
    net.layers[0].data_req(blocker, b"")
    net.layers[0].data_req(target, b"")
    assert net.layers[0].has_pending(target)
    assert net.layers[0].abort_req(target)
    net.sim.run()
    assert seen == [0]


def test_abort_req_does_not_touch_in_flight(raw_bus):
    net = raw_bus(2)
    seen = []
    net.layers[1].add_data_ind(lambda mid, data: seen.append(mid.ref))
    target = MessageId(MessageType.DATA, node=0, ref=1)
    net.layers[0].data_req(target, b"")
    # The frame is on the wire by now; abort must not stop it.
    net.sim.schedule(1000, lambda: net.layers[0].abort_req(target))
    net.sim.run()
    assert seen == [1]


def test_node_id_property(raw_bus):
    net = raw_bus(2)
    assert net.layers[1].node_id == 1
