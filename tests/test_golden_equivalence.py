"""Golden-trace equivalence: the fast core must change *nothing* observable.

Each scenario runs twice — once on the default fast core (table-driven
encoding, tuple-based event queue, single encode per transmission) and once
under ``legacy_core()`` (the seed-faithful bit-list encoder, dataclass heap
and double-encode bus path) — and the complete observable fingerprint must
match exactly: every trace record in order (event order and timing), the
per-type bus bit accounting (wire lengths), the event count and every
node's membership view.
"""

from repro.can.errormodel import FaultInjector, FaultKind
from repro.can.identifiers import MessageType
from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.perf.legacy import legacy_core
from repro.sim.clock import ms
from repro.sim.trace import record_to_dict

CONFIG = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))


def fingerprint(net):
    """Everything observable about a finished run, in comparable form."""
    views = {}
    for node in net.correct_nodes():
        view = node.view()
        views[node.node_id] = (sorted(view.members), view.round_index)
    return {
        "trace": [record_to_dict(record) for record in net.sim.trace],
        "events": net.sim.events_processed,
        "now": net.sim.now,
        "physical_frames": net.bus.stats.physical_frames,
        "error_frames": net.bus.stats.error_frames,
        "busy_bits": net.bus.stats.busy_bits,
        "bits_by_type": dict(net.bus.stats.bits_by_type),
        "views": views,
    }


def scenario_crash_detection():
    """10 nodes bootstrap; one crashes; detection and view change follow."""
    net = CanelyNetwork(node_count=10, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    net.node(7).crash()
    net.run_for(ms(200))
    assert net.views_agree()
    return fingerprint(net)


def scenario_join_leave_churn():
    """Staggered joins and a voluntary leave exercise RHA and the cycle."""
    net = CanelyNetwork(node_count=6, config=CONFIG)
    for node_id in range(4):
        net.node(node_id).join()
    net.run_for(ms(400))
    net.node(4).join()
    net.node(5).join()
    net.run_for(ms(300))
    net.node(2).leave()
    net.run_for(ms(300))
    assert net.views_agree()
    return fingerprint(net)


def scenario_inconsistent_omissions():
    """FDA traffic hit by inconsistent omissions while a node crashes."""
    injector = FaultInjector()
    injector.fault_on_frame(
        lambda f: f.mid.mtype is MessageType.FDA,
        FaultKind.INCONSISTENT_OMISSION,
        accepting=[2],
    )
    net = CanelyNetwork(node_count=8, config=CONFIG, injector=injector)
    net.join_all()
    net.run_for(ms(400))
    net.node(6).crash()
    net.run_for(ms(300))
    assert net.views_agree()
    return fingerprint(net)


SCENARIOS = [
    scenario_crash_detection,
    scenario_join_leave_churn,
    scenario_inconsistent_omissions,
]


def _assert_equivalent(scenario):
    fast = scenario()
    with legacy_core():
        legacy = scenario()
    assert fast["events"] == legacy["events"]
    assert fast["now"] == legacy["now"]
    assert fast["physical_frames"] == legacy["physical_frames"]
    assert fast["error_frames"] == legacy["error_frames"]
    # Wire lengths: identical per-type bit accounting implies every frame
    # was measured at the same stuffed length by both encoders.
    assert fast["busy_bits"] == legacy["busy_bits"]
    assert fast["bits_by_type"] == legacy["bits_by_type"]
    assert fast["views"] == legacy["views"]
    # Full event order and payloads, record by record.
    assert len(fast["trace"]) == len(legacy["trace"])
    for fast_rec, legacy_rec in zip(fast["trace"], legacy["trace"]):
        assert fast_rec == legacy_rec


def test_crash_detection_equivalent():
    _assert_equivalent(scenario_crash_detection)


def test_join_leave_churn_equivalent():
    _assert_equivalent(scenario_join_leave_churn)


def test_inconsistent_omissions_equivalent():
    _assert_equivalent(scenario_inconsistent_omissions)


def test_legacy_core_restores_the_fast_core():
    """The context manager must leave no patch behind."""
    from repro.can import bitstream, bus
    from repro.sim import kernel
    from repro.sim.event import EventQueue

    before_complete = bus.CanBus._complete
    with legacy_core():
        assert kernel.EventQueue is not EventQueue
        assert bus.CanBus._complete is not before_complete
        assert not bitstream._fast_encoding
    assert kernel.EventQueue is EventQueue
    assert bus.CanBus._complete is before_complete
    assert bitstream._fast_encoding


# -- feature toggles: batched dispatch / fast rearm / idle skip / delivery ----
#
# The kernel and bus restructurings ship switchable fast paths. Each
# scenario must produce an *identical* fingerprint with every one of them
# forced off — the features may only change wall-clock, never a simulated
# outcome. (TIMER_WHEEL and COLUMNAR default off and are covered by the
# opt-in equivalence tests below.)


def _with_features_off(monkeypatch, scenario):
    import repro.can.bus as bus_mod
    import repro.sim.kernel as kernel_mod
    import repro.sim.timers as timers_mod

    monkeypatch.setattr(kernel_mod, "BATCH_DISPATCH", False)
    monkeypatch.setattr(timers_mod, "FAST_REARM", False)
    monkeypatch.setattr(bus_mod, "FILTERED_DELIVERY", False)
    return scenario()


def test_crash_detection_feature_toggles_change_nothing(monkeypatch):
    on = scenario_crash_detection()
    off = _with_features_off(monkeypatch, scenario_crash_detection)
    assert on == off


def test_join_leave_churn_feature_toggles_change_nothing(monkeypatch):
    on = scenario_join_leave_churn()
    off = _with_features_off(monkeypatch, scenario_join_leave_churn)
    assert on == off


def test_inconsistent_omissions_feature_toggles_change_nothing(monkeypatch):
    on = scenario_inconsistent_omissions()
    off = _with_features_off(monkeypatch, scenario_inconsistent_omissions)
    assert on == off


def scenario_settled_after_mass_crash(idle_skip):
    """Every node but one crashes. The survivor's heartbeat keeps kernel
    deadlines within ``Thb``, so the settling loop's quiescence probe runs
    every cycle but never actually leaps — this pins the probe itself as
    outcome-neutral (the leap path is unit-tested on a stub network in
    ``test_scenario_builder.py``)."""
    net = CanelyNetwork(node_count=5, config=CONFIG)
    builder = net.scenario(seed=11).bootstrap()
    for node_id in range(1, 5):
        builder.crash(node_id, at=ms(5 * node_id))
    builder.run_until_settled(idle_skip=idle_skip)
    return fingerprint(net)


def test_idle_skip_changes_no_simulated_outcome():
    with_skip = scenario_settled_after_mass_crash(idle_skip=True)
    without = scenario_settled_after_mass_crash(idle_skip=False)
    # The skip leaps provably silent cycles, so fewer kernel events fire
    # and the runs may end at different instants — but every observable
    # protocol outcome (trace, wire accounting, views) is identical up to
    # the shorter run's horizon. Compare everything except the run length.
    assert with_skip["views"] == without["views"]
    assert with_skip["physical_frames"] == without["physical_frames"]
    assert with_skip["error_frames"] == without["error_frames"]
    assert with_skip["busy_bits"] == without["busy_bits"]
    assert with_skip["bits_by_type"] == without["bits_by_type"]
    assert with_skip["trace"] == without["trace"]


def test_feature_toggles_off_match_legacy_core(monkeypatch):
    """Transitivity check: features-off fast core == legacy core, so the
    three-way equivalence (features-on == features-off == legacy) holds."""
    off = _with_features_off(monkeypatch, scenario_crash_detection)
    with legacy_core():
        legacy = scenario_crash_detection()
    assert off["events"] == legacy["events"]
    assert off["trace"] == legacy["trace"]
    assert off["views"] == legacy["views"]


# -- opt-in backends: timer wheel and columnar traces -------------------------
#
# TIMER_WHEEL and COLUMNAR default off. Both are *outcome*-equivalent
# rather than bit-identical at the kernel-bookkeeping level: the wheel
# replaces per-alarm events with cursor events (so ``events_processed``
# legitimately differs), and the columnar recorder stores the very same
# records in arrays. Every protocol observable — the full trace, the wire
# accounting and the membership views — must still match the default core
# exactly.


def _with_timer_wheel(monkeypatch, scenario):
    import repro.sim.timers as timers_mod

    monkeypatch.setattr(timers_mod, "TIMER_WHEEL", True)
    return scenario()


def _with_columnar_trace(monkeypatch, scenario):
    import repro.sim.trace as trace_mod

    monkeypatch.setattr(trace_mod, "COLUMNAR", True)
    return scenario()


def _assert_outcome_equal(candidate, reference):
    assert candidate["views"] == reference["views"]
    assert candidate["physical_frames"] == reference["physical_frames"]
    assert candidate["error_frames"] == reference["error_frames"]
    assert candidate["busy_bits"] == reference["busy_bits"]
    assert candidate["bits_by_type"] == reference["bits_by_type"]
    assert candidate["trace"] == reference["trace"]


def test_timer_wheel_changes_no_simulated_outcome(monkeypatch):
    default = scenario_crash_detection()
    wheel = _with_timer_wheel(monkeypatch, scenario_crash_detection)
    _assert_outcome_equal(wheel, default)


def test_timer_wheel_outcome_equivalent_under_churn(monkeypatch):
    default = scenario_join_leave_churn()
    wheel = _with_timer_wheel(monkeypatch, scenario_join_leave_churn)
    _assert_outcome_equal(wheel, default)


def test_timer_wheel_outcome_equivalent_under_faults(monkeypatch):
    default = scenario_inconsistent_omissions()
    wheel = _with_timer_wheel(monkeypatch, scenario_inconsistent_omissions)
    _assert_outcome_equal(wheel, default)


def test_columnar_trace_is_bit_identical(monkeypatch):
    """Columnar storage changes nothing simulated at all — even the event
    count — so the whole fingerprint must match record for record."""
    default = scenario_crash_detection()
    columnar = _with_columnar_trace(monkeypatch, scenario_crash_detection)
    assert columnar == default


def test_all_scaling_features_on_outcome_equivalent(monkeypatch):
    """The fast_config stack the scaling benchmarks run: wheel + columnar
    + filtered delivery together, against the stock default core."""
    import repro.can.bus as bus_mod
    import repro.sim.timers as timers_mod
    import repro.sim.trace as trace_mod

    default = scenario_inconsistent_omissions()
    monkeypatch.setattr(timers_mod, "TIMER_WHEEL", True)
    monkeypatch.setattr(trace_mod, "COLUMNAR", True)
    monkeypatch.setattr(bus_mod, "FILTERED_DELIVERY", True)
    stacked = scenario_inconsistent_omissions()
    _assert_outcome_equal(stacked, default)
