"""Unit tests for CAN physical-layer timing."""

import pytest

from repro.can.phy import BitTiming, max_bus_length_m
from repro.errors import ConfigurationError
from repro.sim.clock import us


def test_default_is_one_mbps():
    timing = BitTiming()
    assert timing.bit_rate == 1_000_000
    assert timing.bit_time == us(1)


def test_paper_rate_length_pairs():
    # Section 3: "Typical values are: 40m @ 1 Mbps; 1000m @ 50 kbps."
    assert max_bus_length_m(1_000_000) == 40
    assert max_bus_length_m(50_000) == 1000


def test_intermediate_rate_maps_conservatively():
    assert max_bus_length_m(600_000) == 100  # next faster entry (500k)


def test_rate_above_can_max_rejected():
    with pytest.raises(ConfigurationError):
        max_bus_length_m(2_000_000)


def test_bits_to_ticks_and_back():
    timing = BitTiming(bit_rate=500_000)
    assert timing.bit_time == us(2)
    assert timing.bits_to_ticks(100) == us(200)
    assert timing.ticks_to_bits(us(200)) == 100


def test_non_divisible_rate_rejected():
    with pytest.raises(ConfigurationError):
        BitTiming(bit_rate=300_000)  # 1e9/3e5 is not an integer


def test_non_positive_rate_rejected():
    with pytest.raises(ConfigurationError):
        BitTiming(bit_rate=0)


def test_max_length_property():
    assert BitTiming(bit_rate=125_000).max_length_m == 500
