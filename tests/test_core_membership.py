"""Unit tests for the site membership protocol (paper Fig. 9).

These drive full CanelyNetwork stacks — the membership machine is wired to
RHA, FDA and the failure detector exactly as in the paper's Fig. 5.
"""

import pytest

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import ms
from repro.util.sets import NodeSet

CONFIG = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))


def make(node_count):
    return CanelyNetwork(node_count=node_count, config=CONFIG)


def test_cold_start_bootstrap(raw_bus):
    net = make(4)
    net.join_all()
    net.run_for(ms(400))
    assert net.views_agree()
    assert sorted(net.agreed_view()) == [0, 1, 2, 3]


def test_bootstrap_converges_with_staggered_joins():
    net = make(4)
    for node_id in range(4):
        net.sim.schedule_at(ms(5 * node_id), net.node(node_id).join)
    net.run_for(ms(600))
    assert sorted(net.agreed_view()) == [0, 1, 2, 3]


def test_view_round_index_advances():
    net = make(2)
    net.join_all()
    net.run_for(ms(400))
    first = net.node(0).view().round_index
    net.run_for(ms(200))
    assert net.node(0).view().round_index > first


def test_late_join_integrates():
    net = make(5)
    for node_id in range(4):
        net.node(node_id).join()
    net.run_for(ms(400))
    assert sorted(net.agreed_view()) == [0, 1, 2, 3]
    net.node(4).join()
    net.run_for(ms(200))
    assert sorted(net.agreed_view()) == [0, 1, 2, 3, 4]
    assert net.node(4).is_member


def test_join_while_not_member_only():
    net = make(3)
    net.join_all()
    net.run_for(ms(400))
    members_before = net.agreed_view()
    net.node(0).join()  # already a member: s00 guard ignores it
    net.run_for(ms(200))
    assert net.agreed_view() == members_before


def test_leave_removes_node_consistently():
    net = make(4)
    net.join_all()
    net.run_for(ms(400))
    net.node(2).leave()
    net.run_for(ms(200))
    assert sorted(net.agreed_view()) == [0, 1, 3]
    assert not net.node(2).is_member


def test_leaving_node_gets_final_notification():
    net = make(3)
    net.join_all()
    net.run_for(ms(400))
    changes = []
    net.node(1).on_membership_change(changes.append)
    net.node(1).leave()
    net.run_for(ms(200))
    final = changes[-1]
    assert 1 in final.failed or 1 not in final.active


def test_leave_of_non_member_ignored():
    net = make(3)
    net.join_all()
    net.run_for(ms(400))
    net.node(2).leave()
    net.run_for(ms(200))
    net.node(2).leave()  # no longer a member: s07 guard
    net.run_for(ms(200))
    assert sorted(net.agreed_view()) == [0, 1]


def test_crash_detected_and_removed():
    net = make(5)
    net.join_all()
    net.run_for(ms(400))
    net.node(3).crash()
    net.run_for(ms(150))
    assert net.views_agree()
    assert sorted(net.agreed_view()) == [0, 1, 2, 4]


def test_crash_notification_latency_tens_of_ms():
    """Fig. 11's membership row: tens of milliseconds."""
    net = make(5)
    net.join_all()
    net.run_for(ms(400))
    crash_time = net.sim.now
    net.node(3).crash()
    net.run_for(ms(150))
    notifications = [
        record.time
        for record in net.sim.trace.select(category="msh.change")
        if 3 in record.data["failed"]
    ]
    assert notifications
    latency = notifications[0] - crash_time
    assert latency <= ms(30)  # Thb + Ttd + dissemination


def test_multiple_crashes_same_cycle():
    net = make(6)
    net.join_all()
    net.run_for(ms(400))
    net.node(4).crash()
    net.node(5).crash()
    net.run_for(ms(200))
    assert sorted(net.agreed_view()) == [0, 1, 2, 3]


def test_simultaneous_join_and_leave():
    net = make(6)
    for node_id in range(4):
        net.node(node_id).join()
    net.run_for(ms(400))
    net.node(4).join()
    net.node(2).leave()
    net.run_for(ms(250))
    assert sorted(net.agreed_view()) == [0, 1, 3, 4]


def test_join_storm():
    net = make(12)
    net.join_all()
    net.run_for(ms(600))
    assert sorted(net.agreed_view()) == list(range(12))


def test_membership_change_notifications_carry_active_set():
    net = make(3)
    net.join_all()
    changes = []
    net.node(0).on_membership_change(changes.append)
    net.run_for(ms(400))
    assert changes
    assert sorted(changes[-1].active) == [0, 1, 2]


def test_no_rha_when_no_pending_requests():
    """s22-s25: quiescent cycles skip the RHA execution (bandwidth)."""
    net = make(3)
    net.join_all()
    net.run_for(ms(400))
    rha_before = [
        r
        for r in net.sim.trace.select(category="bus.tx")
        if r.data["mid"].mtype.name == "RHA"
    ]
    net.run_for(ms(300))  # several quiet cycles
    rha_after = [
        r
        for r in net.sim.trace.select(category="bus.tx")
        if r.data["mid"].mtype.name == "RHA"
    ]
    assert len(rha_after) == len(rha_before)


def test_crashed_node_can_rejoin_much_later():
    net = make(4)
    net.join_all()
    net.run_for(ms(400))
    net.node(2).crash()
    net.run_for(ms(300))
    assert sorted(net.agreed_view()) == [0, 1, 3]
    # "much later" (>> Tm): the node reboots and rejoins.
    recovered = net.node(2)
    recovered.recover()
    recovered.join()
    net.run_for(ms(300))
    assert sorted(net.agreed_view()) == [0, 1, 2, 3]


def test_view_object_contents():
    net = make(2)
    net.join_all()
    net.run_for(ms(400))
    view = net.node(1).view()
    assert 0 in view and 1 in view
    assert len(view) == 2
    assert view.time == net.sim.now


def test_reintegration_cooldown_enforced():
    """Section 6.4's assumption, opt-in enforced by the membership layer."""
    from repro.errors import MembershipError
    from repro.sim.clock import sec

    config = CanelyConfig(
        capacity=16,
        tm=ms(50),
        tjoin_wait=ms(150),
        reintegration_cooldown=sec(1),
    )
    net = CanelyNetwork(node_count=3, config=config)
    net.join_all()
    net.run_for(ms(400))
    net.node(2).leave()
    net.run_for(ms(200))
    assert not net.node(2).is_member
    with pytest.raises(MembershipError):
        net.node(2).join()  # too soon
    net.run_for(sec(1))
    net.node(2).join()  # cooldown elapsed
    net.run_for(ms(300))
    assert sorted(net.agreed_view()) == [0, 1, 2]


def test_cooldown_validation():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        CanelyConfig(
            tm=ms(50), tjoin_wait=ms(200), reintegration_cooldown=ms(50)
        )
