"""Property-based tests for EDCAN's reliability guarantee."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.can.driver import CanStandardLayer
from repro.can.errormodel import FaultInjector, FaultKind
from repro.can.identifiers import MessageType
from repro.llc.edcan import Edcan
from repro.sim.kernel import Simulator

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def diffusion_scenarios(draw):
    node_count = draw(st.integers(min_value=3, max_value=8))
    accepting = draw(
        st.sets(
            st.integers(min_value=1, max_value=node_count - 1),
            min_size=1,
            max_size=node_count - 1,
        )
    )
    crash_sender = draw(st.booleans())
    payload = draw(st.binary(min_size=0, max_size=8))
    return node_count, accepting, crash_sender, payload


@SLOW
@given(diffusion_scenarios())
def test_all_correct_nodes_deliver_despite_first_tx_inconsistency(scenario):
    """Whatever subset accepts the faulty first transmission, and whether
    or not the sender survives, every correct node delivers exactly once."""
    node_count, accepting, crash_sender, payload = scenario
    injector = FaultInjector()
    injector.fault_on_frame(
        lambda f: f.mid.mtype is MessageType.DATA,
        FaultKind.INCONSISTENT_OMISSION,
        accepting=sorted(accepting),
        crash_sender=crash_sender,
    )
    sim = Simulator()
    bus = CanBus(sim, injector=injector)
    protocols, delivered = {}, {}
    for node_id in range(node_count):
        controller = CanController(node_id)
        bus.attach(controller)
        protocol = Edcan(CanStandardLayer(controller))
        log = []
        protocol.on_deliver(lambda s, r, d, log=log: log.append((s, r, d)))
        protocols[node_id] = protocol
        delivered[node_id] = log

    ref = protocols[0].broadcast(payload)
    sim.run()

    correct = [n for n in range(node_count) if not (crash_sender and n == 0)]
    for node_id in correct:
        assert delivered[node_id] == [(0, ref, payload)], (
            f"node {node_id}: {delivered[node_id]}"
        )
