"""Property: filtered delivery is observation-identical to broadcast.

:data:`repro.can.bus.FILTERED_DELIVERY` swaps the delivery fan-out from
"offer the frame to every alive controller" to a cached per-identifier
dispatch plan with baked listener upcalls. The contract is that this is a
pure mechanism change: whatever the filter masks, the traffic, the churn
and the injected faults, both paths must produce byte-identical traces,
identical delivery logs and identical bus accounting. Hypothesis drives
randomized schedules against both paths and compares the full fingerprint.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

import repro.can.bus as bus_mod
from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.can.driver import CanStandardLayer
from repro.can.errormodel import FaultInjector, FaultKind
from repro.can.filters import AcceptanceFilter, FilterBank
from repro.can.identifiers import MessageId, MessageType
from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import ms
from repro.sim.kernel import Simulator
from repro.sim.trace import record_to_dict

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_ID_MASK = (1 << 16) - 1


def _run_modes(scenario):
    """Run ``scenario`` under both delivery paths, restoring the toggle."""
    saved = bus_mod.FILTERED_DELIVERY
    try:
        bus_mod.FILTERED_DELIVERY = True
        filtered = scenario()
        bus_mod.FILTERED_DELIVERY = False
        broadcast = scenario()
    finally:
        bus_mod.FILTERED_DELIVERY = saved
    return filtered, broadcast


# -- raw bus with random acceptance masks -------------------------------------


@st.composite
def bus_schedules(draw):
    node_count = draw(st.integers(min_value=2, max_value=5))
    # Per-node filter bank: None = accept-all, else 1-2 random code/mask
    # pairs (random masks make partial-match and reject-all banks likely).
    banks = [
        draw(
            st.none()
            | st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=_ID_MASK),
                    st.integers(min_value=0, max_value=_ID_MASK),
                ),
                min_size=1,
                max_size=2,
            )
        )
        for _ in range(node_count)
    ]
    submissions = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=node_count - 1),  # sender
                st.integers(min_value=0, max_value=3),  # ref
                st.booleans(),  # remote frame?
                st.integers(min_value=0, max_value=ms(2)),  # submit time
                st.binary(max_size=4),
            ),
            min_size=1,
            max_size=12,
        )
    )
    # Churn: maybe crash one node mid-run; maybe re-filter one node
    # mid-run (exercises plan invalidation).
    crash = draw(
        st.none()
        | st.tuples(
            st.integers(min_value=0, max_value=node_count - 1),
            st.integers(min_value=0, max_value=ms(2)),
        )
    )
    refilter = draw(
        st.none()
        | st.tuples(
            st.integers(min_value=0, max_value=node_count - 1),
            st.integers(min_value=0, max_value=ms(2)),
            st.integers(min_value=0, max_value=_ID_MASK),
        )
    )
    fault_tx = draw(st.none() | st.integers(min_value=0, max_value=6))
    return node_count, banks, submissions, crash, refilter, fault_tx


def _run_bus_scenario(schedule):
    node_count, banks, submissions, crash, refilter, fault_tx = schedule
    injector = FaultInjector()
    if fault_tx is not None:
        injector.fault_on_transmission(fault_tx, FaultKind.CONSISTENT_OMISSION)
    sim = Simulator()
    bus = CanBus(sim, injector=injector)
    layers = {}
    controllers = {}
    received = {node_id: [] for node_id in range(node_count)}
    for node_id in range(node_count):
        controller = CanController(node_id)
        bus.attach(controller)
        controllers[node_id] = controller
        layers[node_id] = CanStandardLayer(controller)
        log = received[node_id]
        layers[node_id].add_data_ind(
            lambda mid, data, log=log: log.append(("data", mid.node, mid.ref, data))
        )
        layers[node_id].add_rtr_ind(
            lambda mid, log=log: log.append(("rtr", mid.node, mid.ref))
        )
        spec = banks[node_id]
        if spec is not None:
            controller.set_filters(
                FilterBank(AcceptanceFilter(code, mask) for code, mask in spec)
            )
    for sender, ref, remote, at, payload in submissions:
        mid = MessageId(MessageType.DATA, node=sender, ref=ref)
        if remote:
            sim.schedule_at(at, lambda s=sender, m=mid: layers[s].rtr_req(m))
        else:
            sim.schedule_at(
                at, lambda s=sender, m=mid, p=payload: layers[s].data_req(m, p)
            )
    if crash is not None:
        node_id, at = crash
        sim.schedule_at(at, controllers[node_id].crash)
    if refilter is not None:
        node_id, at, mask = refilter
        sim.schedule_at(
            at,
            lambda c=controllers[node_id], m=mask: c.set_filters(
                FilterBank([AcceptanceFilter(0, m)])
            ),
        )
    sim.run()
    return {
        "trace": [record_to_dict(record) for record in sim.trace],
        "received": received,
        "events": sim.events_processed,
        "physical_frames": bus.stats.physical_frames,
        "error_frames": bus.stats.error_frames,
        "busy_bits": bus.stats.busy_bits,
        "bits_by_type": dict(bus.stats.bits_by_type),
        "rec": {n: c.rec for n, c in controllers.items()},
        "tec": {n: c.tec for n, c in controllers.items()},
    }


@SLOW
@given(bus_schedules())
def test_filtered_delivery_matches_broadcast_on_raw_bus(schedule):
    filtered, broadcast = _run_modes(lambda: _run_bus_scenario(schedule))
    assert filtered == broadcast


# -- full protocol stack under churn and inconsistent omissions ---------------


CONFIG = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))


@st.composite
def network_scenarios(draw):
    node_count = draw(st.integers(min_value=3, max_value=6))
    crash_node = draw(st.integers(min_value=0, max_value=node_count - 1))
    crash_at = draw(st.integers(min_value=ms(150), max_value=ms(300)))
    leave = draw(st.booleans())
    fault_accepting = draw(
        st.none() | st.integers(min_value=0, max_value=node_count - 1)
    )
    return node_count, crash_node, crash_at, leave, fault_accepting


def _run_network_scenario(scenario):
    node_count, crash_node, crash_at, leave, fault_accepting = scenario
    injector = FaultInjector()
    if fault_accepting is not None:
        injector.fault_on_frame(
            lambda f: f.mid.mtype is MessageType.FDA,
            FaultKind.INCONSISTENT_OMISSION,
            accepting=[fault_accepting],
        )
    net = CanelyNetwork(node_count=node_count, config=CONFIG, injector=injector)
    net.join_all()
    net.run_for(ms(150))
    if leave and node_count > 2:
        net.node((crash_node + 1) % node_count).leave()
    net.sim.schedule_at(crash_at, net.node(crash_node).crash)
    net.run_for(ms(350))
    views = {}
    for node in net.correct_nodes():
        view = node.view()
        views[node.node_id] = (sorted(view.members), view.round_index)
    return {
        "trace": [record_to_dict(record) for record in net.sim.trace],
        "events": net.sim.events_processed,
        "physical_frames": net.bus.stats.physical_frames,
        "error_frames": net.bus.stats.error_frames,
        "busy_bits": net.bus.stats.busy_bits,
        "views": views,
    }


@SLOW
@given(network_scenarios())
def test_filtered_delivery_matches_broadcast_on_protocol_stack(scenario):
    filtered, broadcast = _run_modes(lambda: _run_network_scenario(scenario))
    assert filtered == broadcast


# -- bridged multi-segment networks, both backends ----------------------------

# Each example runs a full bridged network four times (two backends would
# double it again), so the segmented property uses a smaller budget.
SLOW_SEGMENTED = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def segmented_scenarios(draw):
    node_count = draw(st.integers(min_value=4, max_value=8))
    segments = draw(st.integers(min_value=2, max_value=3))
    backend = draw(st.sampled_from(["canely", "swim"]))
    crash_node = draw(st.integers(min_value=0, max_value=node_count - 1))
    crash_at = draw(st.integers(min_value=ms(150), max_value=ms(300)))
    return node_count, segments, backend, crash_node, crash_at


def _run_segmented_scenario(scenario):
    node_count, segments, backend, crash_node, crash_at = scenario
    net = CanelyNetwork(
        node_count=node_count,
        config=CONFIG,
        backend=backend,
        segments=segments,
    )
    net.join_all()
    net.run_for(ms(150))
    net.sim.schedule_at(crash_at, net.node(crash_node).crash)
    net.run_for(ms(350))
    views = {}
    for node in net.correct_nodes():
        view = node.view()
        views[node.node_id] = (sorted(view.members), view.round_index)
    return {
        "trace": [record_to_dict(record) for record in net.sim.trace],
        "events": net.sim.events_processed,
        "per_segment": [
            (bus.stats.physical_frames, bus.stats.busy_bits)
            for bus in net.buses
        ],
        "gateway": (net.gateway.stats.forwarded, net.gateway.stats.dropped),
        "views": views,
    }


@SLOW_SEGMENTED
@given(segmented_scenarios())
def test_filtered_delivery_matches_broadcast_across_segments(scenario):
    # The gateway's relay traffic and plan invalidation on attach must be
    # mechanism-transparent too, for either membership backend.
    filtered, broadcast = _run_modes(lambda: _run_segmented_scenario(scenario))
    assert filtered == broadcast
