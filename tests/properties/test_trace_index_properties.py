"""Property-based tests: indexed trace queries match a brute-force scan.

The recorder's per-category/per-node indexes are an optimization; the
observable behavior of ``select``/``count`` must be exactly that of a
linear scan over the retained records, for every filter combination and
in ring-buffer mode.
"""

from hypothesis import given, strategies as st

from repro.sim.trace import TraceRecorder

CATEGORIES = ("bus.tx", "bus.deliver", "msh.view", "fda.nty", "node.crash")

record_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1_000),  # time
        st.sampled_from(CATEGORIES),
        st.integers(min_value=-1, max_value=4),  # node
    ),
    max_size=120,
)


def fill(trace, specs):
    for time, category, node in specs:
        trace.record(time, category, node=node)


def brute_select(trace, category=None, node=None, start=None, end=None):
    out = []
    for record in trace:  # iteration is plain insertion order
        if category is not None:
            if category.endswith("."):
                if not record.category.startswith(category):
                    continue
            elif record.category != category:
                continue
        if node is not None and record.node != node:
            continue
        if start is not None and record.time < start:
            continue
        if end is not None and record.time > end:
            continue
        out.append(record)
    return out


@given(record_specs, st.sampled_from(CATEGORIES + ("bus.", "missing")))
def test_select_by_category_matches_scan(specs, category):
    trace = TraceRecorder()
    fill(trace, specs)
    assert trace.select(category=category) == brute_select(
        trace, category=category
    )


@given(record_specs, st.integers(min_value=-1, max_value=5))
def test_select_by_node_matches_scan(specs, node):
    trace = TraceRecorder()
    fill(trace, specs)
    assert trace.select(node=node) == brute_select(trace, node=node)


@given(
    record_specs,
    st.sampled_from(CATEGORIES + ("bus.",)),
    st.integers(min_value=-1, max_value=5),
    st.integers(min_value=0, max_value=1_000),
    st.integers(min_value=0, max_value=1_000),
)
def test_combined_filters_match_scan(specs, category, node, start, end):
    trace = TraceRecorder()
    fill(trace, specs)
    assert trace.select(
        category=category, node=node, start=start, end=end
    ) == brute_select(trace, category=category, node=node, start=start, end=end)


@given(record_specs, st.sampled_from(CATEGORIES + ("bus.", "missing")))
def test_count_matches_select_length(specs, category):
    trace = TraceRecorder()
    fill(trace, specs)
    assert trace.count(category) == len(brute_select(trace, category=category))


@given(record_specs, st.integers(min_value=1, max_value=40))
def test_ring_buffer_queries_match_scan_over_retained(specs, capacity):
    trace = TraceRecorder(capacity=capacity)
    fill(trace, specs)
    assert len(trace) == min(len(specs), capacity)
    for category in CATEGORIES + ("bus.",):
        assert trace.select(category=category) == brute_select(
            trace, category=category
        )
        assert trace.count(category) == len(
            brute_select(trace, category=category)
        )
    for node in range(-1, 5):
        assert trace.select(node=node) == brute_select(trace, node=node)


@given(record_specs)
def test_categories_totals_match_record_count(specs):
    trace = TraceRecorder()
    fill(trace, specs)
    breakdown = trace.categories()
    assert sum(breakdown.values()) == len(trace)
    assert all(count > 0 for count in breakdown.values())
