"""Property-based tests: NodeSet behaves exactly like a Python set."""

from hypothesis import given, strategies as st

from repro.util.sets import NodeSet

CAPACITY = 64
members = st.sets(st.integers(min_value=0, max_value=CAPACITY - 1))


@given(members)
def test_roundtrip_through_bytes(ids):
    original = NodeSet(ids, CAPACITY)
    assert NodeSet.from_bytes(original.to_bytes(), CAPACITY) == original


@given(members, members)
def test_union_matches_set_semantics(a, b):
    assert set(NodeSet(a, CAPACITY) | NodeSet(b, CAPACITY)) == a | b


@given(members, members)
def test_intersection_matches_set_semantics(a, b):
    assert set(NodeSet(a, CAPACITY) & NodeSet(b, CAPACITY)) == a & b


@given(members, members)
def test_difference_matches_set_semantics(a, b):
    assert set(NodeSet(a, CAPACITY) - NodeSet(b, CAPACITY)) == a - b


@given(members)
def test_complement_involution(a):
    node_set = NodeSet(a, CAPACITY)
    assert node_set.complement().complement() == node_set


@given(members)
def test_complement_partitions_universe(a):
    node_set = NodeSet(a, CAPACITY)
    assert node_set | node_set.complement() == NodeSet.universe(CAPACITY)
    assert node_set.isdisjoint(node_set.complement())


@given(members, st.integers(min_value=0, max_value=CAPACITY - 1))
def test_add_then_remove(a, node_id):
    node_set = NodeSet(a, CAPACITY)
    assert node_id in node_set.add(node_id)
    assert node_id not in node_set.add(node_id).remove(node_id)


@given(members)
def test_len_matches(a):
    assert len(NodeSet(a, CAPACITY)) == len(a)


@given(members, members)
def test_subset_matches(a, b):
    assert NodeSet(a, CAPACITY).issubset(NodeSet(b, CAPACITY)) == (a <= b)


@given(members, members, members)
def test_intersection_associative(a, b, c):
    x, y, z = (NodeSet(s, CAPACITY) for s in (a, b, c))
    assert (x & y) & z == x & (y & z)


@given(members, members)
def test_rha_merge_is_commutative(a, b):
    """The RHA convergence operator (intersection) commutes — node order
    cannot affect the agreed vector."""
    x, y = NodeSet(a, CAPACITY), NodeSet(b, CAPACITY)
    assert x & y == y & x
