"""Property-based tests for the tuple-heap :class:`EventQueue`.

The queue trades simplicity for speed everywhere — lazy cancellation with a
live-count, heap compaction once dead entries dominate, in-place reschedule
leaving stale entries to be repaired when they surface. Hypothesis drives
arbitrary interleavings of ``push`` / ``cancel`` / ``reschedule`` /
``pop`` / ``peek_time`` / ``clear`` against a naive model (a plain list of
live entries, fully sorted on every pop) and the two must agree on the
live count, the peeked time and the exact ``(time, priority, seq)`` pop
order at every step.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.event import EventQueue


class ModelEntry:
    """A live event in the naive reference model."""

    def __init__(self, time, priority, seq):
        self.time = time
        self.priority = priority
        self.seq = seq

    def key(self):
        return (self.time, self.priority, self.seq)


ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("push"),
            st.integers(min_value=0, max_value=500),
            st.integers(min_value=-2, max_value=2),
        ),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10_000)),
        st.tuples(
            st.just("reschedule"),
            st.integers(min_value=0, max_value=10_000),
            st.integers(min_value=0, max_value=500),
        ),
        st.tuples(st.just("pop")),
        st.tuples(st.just("peek")),
        st.tuples(st.just("clear")),
    ),
    max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(ops)
def test_queue_agrees_with_naive_model(plan):
    queue = EventQueue()
    seq = 0
    handles = []  # every Event ever pushed, in push order
    model = {}  # id(event) -> ModelEntry, live entries only

    def check_sync():
        assert len(queue) == len(model)
        assert bool(queue) == bool(model)
        expected_peek = (
            min(entry.key() for entry in model.values())[0] if model else None
        )
        assert queue.peek_time() == expected_peek

    for op in plan:
        kind = op[0]
        if kind == "push":
            _, time, priority = op
            event = queue.push(time, lambda: None, priority)
            assert event.seq == seq
            model[id(event)] = ModelEntry(time, priority, seq)
            seq += 1
            handles.append(event)
        elif kind == "cancel":
            if not handles:
                continue
            event = handles[op[1] % len(handles)]
            event.cancel()
            model.pop(id(event), None)
        elif kind == "reschedule":
            if not handles:
                continue
            _, pick, time = op
            event = handles[pick % len(handles)]
            # The preconditions Simulator.try_reschedule enforces: live,
            # still owned by the queue, deferred (never advanced).
            if (
                event.cancelled
                or event._queue is not queue
                or time < event.time
            ):
                continue
            queue.reschedule(event, time)
            # Reschedule is specified as cancel + fresh push, collapsed.
            model[id(event)] = ModelEntry(time, event.priority, seq)
            assert event.seq == seq
            seq += 1
        elif kind == "pop":
            popped = queue.pop()
            if not model:
                assert popped is None
            else:
                best = min(model.values(), key=ModelEntry.key)
                assert popped is not None
                assert (popped.time, popped.priority, popped.seq) == best.key()
                del model[id(popped)]
        elif kind == "peek":
            pass  # check_sync below peeks every step anyway
        elif kind == "clear":
            queue.clear()
            model.clear()
            # Every handle that was pending reads as cancelled now, and a
            # late cancel() on it must not skew the live count.
            for event in handles:
                if event._queue is None:
                    assert event.cancelled or True
            for event in handles:
                event.cancel()
        check_sync()

    # Drain whatever is left and verify the full residual order.
    drained = []
    while (event := queue.pop()) is not None:
        drained.append((event.time, event.priority, event.seq))
    assert drained == sorted(entry.key() for entry in model.values())


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=100), min_size=80, max_size=200)
)
def test_heavy_cancel_purge_keeps_live_count_exact(times):
    """Force the lazy-purge path: cancel most of a large heap and the live
    count and pop order must stay exact."""
    queue = EventQueue()
    events = [queue.push(time, lambda: None) for time in times]
    survivors = []
    for index, event in enumerate(events):
        if index % 5 == 0:
            survivors.append(event)
        else:
            event.cancel()
    assert len(queue) == len(survivors)
    popped = []
    while (event := queue.pop()) is not None:
        popped.append((event.time, event.seq))
    assert popped == sorted(
        ((event.time, event.seq) for event in survivors)
    )
