"""Soak property: long randomized churn never breaks view agreement.

Hypothesis generates an operation script — crash / recover-and-rejoin /
leave / rejoin-after-leave at randomized offsets — and after every settling
window the invariant must hold: all correct full members agree on a view
that contains exactly the nodes currently supposed to be in.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import ms

CONFIG = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

NODE_COUNT = 6

operations = st.lists(
    st.tuples(
        st.sampled_from(["crash", "leave"]),
        st.integers(min_value=0, max_value=NODE_COUNT - 1),
        st.booleans(),  # come back afterwards?
    ),
    min_size=1,
    max_size=5,
)


@SLOW
@given(operations)
def test_churn_script_preserves_agreement(script):
    net = CanelyNetwork(node_count=NODE_COUNT, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    expected = set(range(NODE_COUNT))

    for action, node_id, comes_back in script:
        node = net.node(node_id)
        if action == "crash":
            if node.crashed or not node.is_member:
                continue
            node.crash()
            expected.discard(node_id)
            net.run_for(ms(250))
            if comes_back:
                node.recover()
                node.join()
                expected.add(node_id)
                net.run_for(ms(300))
        else:  # leave
            if node.crashed or not node.is_member:
                continue
            node.leave()
            expected.discard(node_id)
            net.run_for(ms(250))
            if comes_back:
                node.join()
                expected.add(node_id)
                net.run_for(ms(300))

        assert net.views_agree(), f"after {action}({node_id})"
        assert set(net.agreed_view()) == expected, (
            f"after {action}({node_id}, back={comes_back})"
        )
