"""Property-based tests for RHA: consensus equals the intersection."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.can.driver import CanStandardLayer
from repro.core.config import CanelyConfig
from repro.core.rha import RhaProtocol
from repro.core.state import MembershipState
from repro.sim.clock import ms
from repro.sim.kernel import Simulator
from repro.sim.timers import TimerService
from repro.util.sets import NodeSet

CONFIG = CanelyConfig(capacity=32, tm=ms(50), trha=ms(10), tjoin_wait=ms(150))

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def proposals(draw):
    member_count = draw(st.integers(min_value=2, max_value=8))
    members = set(range(member_count))
    per_node = {}
    for node_id in range(member_count):
        joining = draw(
            st.sets(st.integers(min_value=10, max_value=15), max_size=3)
        )
        leaving = draw(
            st.sets(st.integers(min_value=0, max_value=member_count - 1), max_size=2)
        )
        per_node[node_id] = (joining, leaving)
    return member_count, per_node


@SLOW
@given(proposals())
def test_agreed_vector_is_intersection_of_initial_proposals(plan):
    member_count, per_node = plan
    members = NodeSet(range(member_count), CONFIG.capacity)

    sim = Simulator()
    bus = CanBus(sim)
    protocols, ends, initial = {}, {}, {}
    for node_id in range(member_count):
        controller = CanController(node_id)
        bus.attach(controller)
        state = MembershipState(capacity=CONFIG.capacity)
        state.view = members
        joining, leaving = per_node[node_id]
        state.joining = NodeSet(joining, CONFIG.capacity)
        state.leaving = NodeSet(leaving, CONFIG.capacity)
        initial[node_id] = state.initial_rhv()
        protocol = RhaProtocol(
            CanStandardLayer(controller), TimerService(sim), CONFIG, state
        )
        log = []
        protocol.on_end(log.append)
        protocols[node_id] = protocol
        ends[node_id] = log

    protocols[0].request()
    sim.run_until(ms(30))

    # Every member terminated with the same vector.
    finals = [ends[n][0] for n in range(member_count)]
    assert all(len(ends[n]) == 1 for n in range(member_count))
    assert all(final == finals[0] for final in finals)

    # And that vector is exactly the intersection of the engaged proposals:
    # the initiator's plus everyone that received an RHV signal (here: all).
    expected = initial[0]
    for node_id in range(1, member_count):
        expected = expected & initial[node_id]
    assert finals[0] == expected
