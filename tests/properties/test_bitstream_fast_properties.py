"""Fast-path vs reference equivalence, randomized.

The overhaul keeps the original bit-list implementations precisely so the
table-driven CRC, the integer stuffing counter and the memoized wire-length
path can be checked against them over arbitrary inputs. Any divergence here
is a correctness bug in the fast path, never a tolerable approximation.
"""

from hypothesis import given, settings, strategies as st

from repro.can.bitstream import (
    _crc15_int,
    _frame_body_value,
    _stuffed_length,
    clear_encoding_cache,
    crc15,
    decode_frame_bits,
    exact_frame_bits,
    exact_frame_bits_reference,
    frame_body_bits,
    stuff,
)

bits = st.lists(st.integers(min_value=0, max_value=1), max_size=256)
payloads = st.binary(max_size=8)
std_identifiers = st.integers(min_value=0, max_value=(1 << 11) - 1)
ext_identifiers = st.integers(min_value=0, max_value=(1 << 29) - 1)


def _bits_to_int(pattern):
    value = 0
    for bit in pattern:
        value = (value << 1) | bit
    return value


@given(bits)
def test_table_crc_matches_bit_shift_reference(pattern):
    assert _crc15_int(_bits_to_int(pattern), len(pattern)) == crc15(pattern)


@given(bits)
def test_integer_stuffing_matches_list_stuffing(pattern):
    expected = len(stuff(pattern))
    assert _stuffed_length(_bits_to_int(pattern), len(pattern)) == expected


@given(ext_identifiers, payloads, st.booleans())
def test_frame_body_value_matches_bit_list_body(identifier, data, remote):
    if remote:
        data = b""
    body = frame_body_bits(identifier, data, remote=remote, extended=True)
    value, nbits = _frame_body_value(identifier, data, remote, True)
    assert nbits == len(body)
    assert value == _bits_to_int(body)


@given(std_identifiers, payloads, st.booleans())
def test_frame_body_value_matches_bit_list_body_standard(identifier, data, remote):
    if remote:
        data = b""
    body = frame_body_bits(identifier, data, remote=remote, extended=False)
    value, nbits = _frame_body_value(identifier, data, remote, False)
    assert nbits == len(body)
    assert value == _bits_to_int(body)


@given(
    ext_identifiers,
    payloads,
    st.booleans(),
    st.booleans(),
    st.booleans(),
)
@settings(max_examples=200)
def test_fast_wire_length_matches_reference(
    identifier, data, remote, extended, with_interframe
):
    if not extended:
        identifier &= (1 << 11) - 1
    if remote:
        data = b""
    fast = exact_frame_bits(
        identifier, data, remote=remote, extended=extended,
        with_interframe=with_interframe,
    )
    reference = exact_frame_bits_reference(
        identifier, data, remote=remote, extended=extended,
        with_interframe=with_interframe,
    )
    assert fast == reference


@given(ext_identifiers, payloads, st.booleans())
def test_decode_roundtrip_still_holds(identifier, data, remote):
    """The retained reference decoder inverts the frame body encoding."""
    if remote:
        data = b""
    body = frame_body_bits(identifier, data, remote=remote, extended=True)
    decoded = decode_frame_bits(stuff(body))
    assert decoded.extended
    assert decoded.identifier == identifier
    assert decoded.remote == remote
    assert decoded.data == data
    assert decoded.crc_ok


@given(st.lists(st.tuples(ext_identifiers, payloads), max_size=12))
def test_cache_is_transparent(frames):
    """Cached answers equal uncached answers for repeated mixed queries."""
    clear_encoding_cache()
    first = [
        exact_frame_bits(identifier, data, remote=False, extended=True)
        for identifier, data in frames
    ]
    second = [
        exact_frame_bits(identifier, data, remote=False, extended=True)
        for identifier, data in frames
    ]
    assert first == second
    clear_encoding_cache()
    fresh = [
        exact_frame_bits(identifier, data, remote=False, extended=True)
        for identifier, data in frames
    ]
    assert fresh == first
