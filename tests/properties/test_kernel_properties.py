"""Property-based tests for the simulation kernel."""

from hypothesis import given, strategies as st

from repro.sim.event import EventQueue
from repro.sim.kernel import Simulator

schedules = st.lists(st.integers(min_value=0, max_value=10_000), max_size=60)


@given(schedules)
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(schedules)
def test_queue_pop_order_matches_sorted_times(times):
    queue = EventQueue()
    for time in times:
        queue.push(time, lambda: None)
    popped = []
    while (event := queue.pop()) is not None:
        popped.append(event.time)
    assert popped == sorted(times)


@given(schedules, st.integers(min_value=0, max_value=10_000))
def test_run_until_splits_execution_exactly(delays, boundary):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(d))
    sim.run_until(boundary)
    early = list(fired)
    assert all(d <= boundary for d in early)
    sim.run()
    assert sorted(fired) == sorted(delays)


@given(st.lists(st.tuples(st.integers(0, 1000), st.booleans()), max_size=40))
def test_cancelled_events_never_fire(plan):
    sim = Simulator()
    fired = []
    for delay, cancel in plan:
        event = sim.schedule(delay, lambda d=delay: fired.append(d))
        if cancel:
            event.cancel()
    sim.run()
    expected = sorted(d for d, cancel in plan if not cancel)
    assert sorted(fired) == expected
