"""Property-based tests for bit-level CAN encoding."""

from hypothesis import given, strategies as st

from repro.can.bitstream import (
    crc15,
    destuff,
    exact_frame_bits,
    stuff,
    worst_case_frame_bits,
)

bits = st.lists(st.integers(min_value=0, max_value=1), max_size=200)
payloads = st.binary(max_size=8)
identifiers = st.integers(min_value=0, max_value=(1 << 29) - 1)


@given(bits)
def test_stuff_destuff_roundtrip(pattern):
    assert destuff(stuff(pattern)) == pattern


@given(bits)
def test_stuffed_never_has_six_equal_bits(pattern):
    stuffed = stuff(pattern)
    run = 0
    previous = None
    for bit in stuffed:
        run = run + 1 if bit == previous else 1
        previous = bit
        assert run <= 5


@given(bits)
def test_stuffing_overhead_bounded_by_quarter(pattern):
    """At most one stuff bit per four original bits (after the first)."""
    overhead = len(stuff(pattern)) - len(pattern)
    assert overhead <= max(0, (len(pattern) - 1) // 4)


@given(identifiers, payloads)
def test_exact_length_bounded_by_worst_case(identifier, data):
    exact = exact_frame_bits(identifier, data, remote=False, extended=True)
    assert exact <= worst_case_frame_bits(len(data), extended=True)


@given(identifiers, payloads)
def test_exact_length_at_least_unstuffed(identifier, data):
    exact = exact_frame_bits(
        identifier, data, remote=False, extended=True, with_interframe=False
    )
    unstuffed = 64 + 8 * len(data)
    assert exact >= unstuffed


@given(bits, st.integers(min_value=0, max_value=199))
def test_crc_detects_any_single_bit_error(pattern, index):
    if not pattern:
        return
    index %= len(pattern)
    flipped = list(pattern)
    flipped[index] ^= 1
    assert crc15(flipped) != crc15(pattern)


@given(identifiers, payloads, st.booleans())
def test_decode_inverts_encode(identifier, data, extended):
    from repro.can.bitstream import decode_frame_bits, frame_body_bits

    if not extended:
        identifier &= (1 << 11) - 1
    stuffed = stuff(frame_body_bits(identifier, data, False, extended))
    decoded = decode_frame_bits(stuffed)
    assert decoded.identifier == identifier
    assert decoded.data == data
    assert decoded.extended == extended
    assert decoded.crc_ok
