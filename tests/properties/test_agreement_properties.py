"""Property-based tests for the headline invariant: view agreement.

Hypothesis drives randomized scenarios — crashes, joins, leaves, scripted
inconsistent omissions hitting protocol frames — and after a settling
period every correct full member must hold exactly the same view, and that
view must contain exactly the surviving members.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.can.errormodel import FaultInjector, FaultKind
from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import ms

CONFIG = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

node_counts = st.integers(min_value=3, max_value=7)


@st.composite
def crash_plans(draw):
    node_count = draw(node_counts)
    crash_count = draw(st.integers(min_value=0, max_value=node_count - 2))
    crashed = draw(
        st.lists(
            st.integers(min_value=0, max_value=node_count - 1),
            min_size=crash_count,
            max_size=crash_count,
            unique=True,
        )
    )
    offsets = draw(
        st.lists(
            st.integers(min_value=0, max_value=ms(120)),
            min_size=crash_count,
            max_size=crash_count,
        )
    )
    return node_count, list(zip(crashed, offsets))


@SLOW
@given(crash_plans())
def test_views_agree_after_arbitrary_crashes(plan):
    node_count, crashes = plan
    net = CanelyNetwork(node_count=node_count, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    base = net.sim.now
    for node_id, offset in crashes:
        net.sim.schedule_at(base + offset, net.node(node_id).crash)
    net.run_for(ms(400))
    assert net.views_agree()
    survivors = {n for n in range(node_count)} - {n for n, _ in crashes}
    assert set(net.agreed_view()) == survivors


@st.composite
def fault_plans(draw):
    node_count = draw(st.integers(min_value=3, max_value=6))
    fault_count = draw(st.integers(min_value=0, max_value=2))
    faults = []
    for _ in range(fault_count):
        tx_index = draw(st.integers(min_value=0, max_value=40))
        accepting = draw(
            st.sets(
                st.integers(min_value=0, max_value=node_count - 1),
                min_size=1,
                max_size=node_count - 1,
            )
        )
        kind = draw(
            st.sampled_from(
                [FaultKind.CONSISTENT_OMISSION, FaultKind.INCONSISTENT_OMISSION]
            )
        )
        faults.append((tx_index, kind, accepting))
    return node_count, faults


@SLOW
@given(fault_plans())
def test_bootstrap_agrees_despite_scripted_faults(plan):
    node_count, faults = plan
    injector = FaultInjector()
    for tx_index, kind, accepting in faults:
        injector.fault_on_transmission(tx_index, kind, accepting=sorted(accepting))
    net = CanelyNetwork(node_count=node_count, config=CONFIG, injector=injector)
    net.join_all()
    net.run_for(ms(700))
    assert net.views_agree()
    assert set(net.agreed_view()) == set(range(node_count))


@st.composite
def churn_plans(draw):
    node_count = draw(st.integers(min_value=4, max_value=7))
    leaver = draw(st.integers(min_value=0, max_value=node_count - 1))
    crasher = draw(st.integers(min_value=0, max_value=node_count - 1))
    leave_offset = draw(st.integers(min_value=0, max_value=ms(100)))
    crash_offset = draw(st.integers(min_value=0, max_value=ms(100)))
    return node_count, leaver, crasher, leave_offset, crash_offset


@SLOW
@given(churn_plans())
def test_concurrent_leave_and_crash_agree(plan):
    node_count, leaver, crasher, leave_offset, crash_offset = plan
    net = CanelyNetwork(node_count=node_count, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    base = net.sim.now
    net.sim.schedule_at(base + leave_offset, net.node(leaver).leave)
    if crasher != leaver:
        net.sim.schedule_at(base + crash_offset, net.node(crasher).crash)
    net.run_for(ms(500))
    assert net.views_agree()
    expected = set(range(node_count)) - {leaver}
    if crasher != leaver:
        expected -= {crasher}
    assert set(net.agreed_view()) == expected
