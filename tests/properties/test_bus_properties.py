"""Property-based tests for the CAN bus core invariants.

Whatever the submission schedule:

* every submitted frame from a live node is eventually delivered to every
  live node (no loss without injected faults);
* per-identifier FIFO: two frames with the same identifier from one node
  arrive in submission order;
* transmissions never overlap (the bus is serial);
* the substrate property monitors (MCAN/LCAN) hold on the trace.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.can.driver import CanStandardLayer
from repro.can.frame import data_frame
from repro.can.identifiers import MessageId, MessageType
from repro.llc.properties import check_all_properties
from repro.sim.clock import ms, sec
from repro.sim.kernel import Simulator

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def submission_schedules(draw):
    node_count = draw(st.integers(min_value=2, max_value=6))
    submissions = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=node_count - 1),  # sender
                st.integers(min_value=0, max_value=3),  # ref (collisions ok)
                st.integers(min_value=0, max_value=ms(2)),  # submit time
                st.binary(max_size=4),
            ),
            min_size=1,
            max_size=15,
        )
    )
    return node_count, submissions


@SLOW
@given(submission_schedules())
def test_every_submission_delivered_everywhere_in_order(schedule):
    node_count, submissions = schedule
    sim = Simulator()
    bus = CanBus(sim)
    layers = {}
    received = {}
    for node_id in range(node_count):
        controller = CanController(node_id)
        bus.attach(controller)
        layers[node_id] = CanStandardLayer(controller)
        log = []
        layers[node_id].add_data_ind(
            lambda mid, data, log=log: log.append((mid.node, mid.ref, data))
        )
        received[node_id] = log

    expected_per_sender = {}
    for sender, ref, at, payload in submissions:
        mid = MessageId(MessageType.DATA, node=sender, ref=ref)
        sim.schedule_at(
            at, lambda s=sender, m=mid, p=payload: layers[s].data_req(m, p)
        )
    # FIFO is defined by submission *time* (stable for ties, matching the
    # scheduler's insertion order).
    for sender, ref, at, payload in sorted(
        submissions, key=lambda item: item[2]
    ):
        expected_per_sender.setdefault((sender, ref), []).append(payload)
    sim.run()

    for node_id, log in received.items():
        # Everything arrived at everyone.
        assert len(log) == len(submissions), node_id
        # Per (sender, ref) FIFO order is preserved.
        per_key = {}
        for sender, ref, data in log:
            per_key.setdefault((sender, ref), []).append(data)
        assert per_key == expected_per_sender

    # All receivers saw the identical global sequence (bus = total order).
    reference = received[0]
    for node_id in range(1, node_count):
        assert received[node_id] == reference

    report = check_all_properties(
        sim.trace,
        correct_nodes=range(node_count),
        omission_degree=1,
        inconsistent_degree=1,
        window=sec(10),
    )
    assert report.ok, report.violations


@SLOW
@given(submission_schedules())
def test_transmissions_never_overlap(schedule):
    node_count, submissions = schedule
    sim = Simulator()
    bus = CanBus(sim)
    layers = {}
    for node_id in range(node_count):
        controller = CanController(node_id)
        bus.attach(controller)
        layers[node_id] = CanStandardLayer(controller)
    for sender, ref, at, payload in submissions:
        mid = MessageId(MessageType.DATA, node=sender, ref=ref)
        sim.schedule_at(
            at, lambda s=sender, m=mid, p=payload: layers[s].data_req(m, p)
        )
    sim.run()
    completions = [
        (record.time, record.data["bits"])
        for record in sim.trace.select(category="bus.tx")
    ]
    completions.sort()
    for (t1, _), (t2, bits2) in zip(completions, completions[1:]):
        # The next frame's transmission (bits minus its interframe share)
        # must have started after the previous one completed.
        frame_ticks = bus.timing.bits_to_ticks(bits2)
        assert t2 - frame_ticks >= t1 - bus.timing.bits_to_ticks(3 + 20)
