"""Property-based tests for the signal codec."""

from hypothesis import given, strategies as st

from repro.workloads.signals import MessageCodec, SignalSpec


@st.composite
def codec_layouts(draw):
    """Non-overlapping signal layouts within one 8-byte frame."""
    specs = []
    cursor = 0
    index = 0
    while cursor < 64:
        width = draw(st.integers(min_value=1, max_value=min(16, 64 - cursor)))
        signed = draw(st.booleans())
        scale = draw(st.sampled_from([1.0, 0.5, 0.25, 2.0, 10.0]))
        offset = draw(st.sampled_from([0.0, -40.0, 100.0]))
        specs.append(
            SignalSpec(
                f"s{index}",
                start_bit=cursor,
                width=width,
                scale=scale,
                offset=offset,
                signed=signed,
            )
        )
        cursor += width
        index += 1
        if draw(st.booleans()):
            break
    return MessageCodec(specs)


@given(codec_layouts(), st.data())
def test_roundtrip_within_quantization(codec, data):
    values = {}
    for spec in codec.signals:
        lo, hi = spec.physical_range
        values[spec.name] = data.draw(
            st.floats(min_value=lo, max_value=hi, allow_nan=False)
        )
    decoded = codec.unpack(codec.pack(values))
    for spec in codec.signals:
        # Quantization error is at most one scale step.
        assert abs(decoded[spec.name] - values[spec.name]) <= abs(spec.scale)


@given(codec_layouts())
def test_zero_frame_decodes_to_offsets(codec):
    decoded = codec.unpack(bytes(8))
    for spec in codec.signals:
        assert decoded[spec.name] == spec.offset


@given(codec_layouts(), st.data())
def test_raw_values_always_in_range(codec, data):
    values = {
        spec.name: data.draw(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
        )
        for spec in codec.signals
    }
    decoded = codec.unpack(codec.pack(values))
    for spec in codec.signals:
        lo, hi = spec.physical_range
        assert lo <= decoded[spec.name] <= hi
