"""Property-based tests for the failure detector.

Completeness and accuracy, over randomized traffic patterns:

* **no false suspicion** — whatever mix of periodic traffic rates the
  nodes run (including none: pure ELS), a live node is never expelled;
* **completeness** — a crashed node is always expelled, whatever traffic
  it was running before.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import ms
from repro.workloads.traffic import PeriodicSource

CONFIG = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

NODE_COUNT = 5

# Per-node traffic period in ms; None = silent (relies on explicit ELS).
traffic_plans = st.lists(
    st.one_of(st.none(), st.integers(min_value=2, max_value=60)),
    min_size=NODE_COUNT,
    max_size=NODE_COUNT,
)


def build(plan):
    net = CanelyNetwork(node_count=NODE_COUNT, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    for node_id, period in enumerate(plan):
        if period is not None:
            PeriodicSource(net.sim, net.node(node_id), period=ms(period))
    return net


@SLOW
@given(traffic_plans)
def test_no_false_suspicion_whatever_the_traffic(plan):
    net = build(plan)
    net.run_for(ms(500))
    assert net.views_agree()
    assert sorted(net.agreed_view()) == list(range(NODE_COUNT))


@SLOW
@given(traffic_plans, st.integers(min_value=0, max_value=NODE_COUNT - 1))
def test_crash_always_detected_whatever_the_traffic(plan, victim):
    net = build(plan)
    net.run_for(ms(100))
    crash_time = net.sim.now
    net.node(victim).crash()
    net.run_for(ms(200))
    assert net.views_agree()
    survivors = set(range(NODE_COUNT)) - {victim}
    assert set(net.agreed_view()) == survivors
    # Notification arrived within the analytic bound.
    from repro.workloads.scenarios import detection_latencies

    latency = detection_latencies(net, {victim: crash_time})[victim]
    assert latency is not None
    assert latency <= CONFIG.thb + CONFIG.ttd + ms(2)
