"""Property-based tests for process-group view consistency."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import ms

CONFIG = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

NODE_COUNT = 5


@st.composite
def group_scripts(draw):
    """A sequence of group operations, possibly ending in a node crash."""
    operations = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["join", "leave"]),
                st.integers(min_value=0, max_value=NODE_COUNT - 1),  # node
                st.integers(min_value=0, max_value=3),  # group
                st.integers(min_value=0, max_value=2),  # process
            ),
            min_size=1,
            max_size=12,
        )
    )
    crash = draw(
        st.one_of(st.none(), st.integers(min_value=0, max_value=NODE_COUNT - 1))
    )
    return operations, crash


@SLOW
@given(group_scripts())
def test_group_views_identical_at_all_surviving_members(script):
    operations, crash = script
    net = CanelyNetwork(node_count=NODE_COUNT, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))

    for action, node_id, group, process in operations:
        node = net.node(node_id)
        if action == "join":
            node.groups.join_group(group, process)
        else:
            node.groups.leave_group(group, process)
        net.run_for(ms(3))

    if crash is not None:
        net.node(crash).crash()
    net.run_for(ms(150))

    survivors = [
        node
        for node in net.nodes.values()
        if not node.crashed and node.is_member
    ]
    assert survivors
    for group in range(4):
        reference = survivors[0].groups.group_view(group).processes
        for node in survivors[1:]:
            assert node.groups.group_view(group).processes == reference, (
                f"group {group} at node {node.node_id}"
            )
        # No process of a crashed site survives anywhere.
        if crash is not None:
            assert all(site != crash for site, _ in reference)
