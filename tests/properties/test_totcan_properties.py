"""Property-based tests for TOTCAN's total order."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.can.driver import CanStandardLayer
from repro.can.errormodel import FaultInjector, FaultKind
from repro.can.identifiers import MessageType
from repro.llc.totcan import Totcan
from repro.sim.clock import ms
from repro.sim.kernel import Simulator
from repro.sim.timers import TimerService

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def broadcast_plans(draw):
    node_count = draw(st.integers(min_value=3, max_value=6))
    # (sender, submission delay) pairs.
    broadcasts = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=node_count - 1),
                st.integers(min_value=0, max_value=ms(3)),
            ),
            min_size=1,
            max_size=6,
        )
    )
    # Optional inconsistent omission against one accept transmission.
    fault_accepting = draw(
        st.one_of(
            st.none(),
            st.integers(min_value=0, max_value=node_count - 1),
        )
    )
    return node_count, broadcasts, fault_accepting


@SLOW
@given(broadcast_plans())
def test_identical_delivery_order_everywhere(plan):
    node_count, broadcasts, fault_accepting = plan
    injector = FaultInjector()
    if fault_accepting is not None:
        injector.fault_on_frame(
            lambda f: f.mid.mtype is MessageType.BCTRL,
            FaultKind.INCONSISTENT_OMISSION,
            accepting=[fault_accepting],
        )
    sim = Simulator()
    bus = CanBus(sim, injector=injector)
    protocols, orders = {}, {}
    for node_id in range(node_count):
        controller = CanController(node_id)
        bus.attach(controller)
        protocol = Totcan(
            CanStandardLayer(controller),
            TimerService(sim),
            sim,
            stability_delay=ms(3),
            discard_timeout=ms(30),
        )
        log = []
        protocol.on_deliver(lambda s, r, d, log=log: log.append((s, r)))
        protocols[node_id] = protocol
        orders[node_id] = log

    for sender, delay in broadcasts:
        sim.schedule(delay, lambda s=sender: protocols[s].broadcast(bytes([s])))
    sim.run_until(ms(100))

    reference = orders[0]
    assert len(reference) == len(broadcasts)
    for node_id in range(1, node_count):
        assert orders[node_id] == reference, (
            f"node {node_id} ordered {orders[node_id]} vs {reference}"
        )
