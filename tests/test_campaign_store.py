"""Tests for sharded checkpoints and the fingerprint store."""

import json

from repro.campaign import (
    VERDICT_OK,
    CampaignSpec,
    CheckpointStore,
    FingerprintStore,
    ScenarioResult,
    checkpoint_shard_paths,
    load_checkpoint,
    schedule_key,
)
from repro.check import ACTION_CRASH, Fault, FaultSchedule

SPEC = CampaignSpec(scenarios=6, seed=3)


def _result(index, seed=None):
    return ScenarioResult(
        index=index,
        seed=SPEC.scenario_seed(index) if seed is None else seed,
        verdict=VERDICT_OK,
    )


# -- sharded checkpoints -------------------------------------------------------


def test_shard_paths_are_stable_and_sorted(tmp_path):
    base = str(tmp_path / "campaign.jsonl")
    with CheckpointStore(base) as store:
        store.write(_result(0))
        store.write(_result(1), shard=2)
        store.write(_result(2), shard=0)
    paths = checkpoint_shard_paths(base)
    assert paths == [
        base,
        str(tmp_path / "campaign.0000.jsonl"),
        str(tmp_path / "campaign.0002.jsonl"),
    ]


def test_load_checkpoint_merges_all_shards(tmp_path):
    base = str(tmp_path / "campaign.jsonl")
    with CheckpointStore(base) as store:
        for index in range(4):
            store.write(_result(index), shard=index % 2)
        store.write(_result(4))  # shardless writes land in the base file
    completed = load_checkpoint(base, SPEC)
    assert sorted(completed) == [0, 1, 2, 3, 4]


def test_resume_tolerates_truncated_final_shard_line(tmp_path):
    """A worker killed mid-write leaves a cut-off last line in its shard;
    resume must keep every complete line and just rerun the victim."""
    base = str(tmp_path / "campaign.jsonl")
    with CheckpointStore(base) as store:
        store.write(_result(0), shard=0)
        store.write(_result(1), shard=0)
        store.write(_result(2), shard=1)
    shard0 = tmp_path / "campaign.0000.jsonl"
    text = shard0.read_text()
    shard0.write_text(text[: len(text) // 2])  # kill mid-line
    completed = load_checkpoint(base, SPEC)
    assert 2 in completed  # the untouched shard survives whole
    assert 0 in completed  # the complete first line survives
    assert 1 not in completed  # only the torn line is lost


def test_store_without_resume_truncates_base_and_shards(tmp_path):
    base = str(tmp_path / "campaign.jsonl")
    with CheckpointStore(base) as store:
        store.write(_result(0))
        store.write(_result(1), shard=0)
    with CheckpointStore(base, resume=False):
        pass  # opening for a fresh run wipes the previous one
    assert (tmp_path / "campaign.jsonl").read_text() == ""
    assert not (tmp_path / "campaign.0000.jsonl").exists()


def test_store_with_resume_appends(tmp_path):
    base = str(tmp_path / "campaign.jsonl")
    with CheckpointStore(base) as store:
        store.write(_result(0))
    with CheckpointStore(base, resume=True) as store:
        store.write(_result(1))
    assert sorted(load_checkpoint(base, SPEC)) == [0, 1]


def test_store_with_no_path_is_a_no_op(tmp_path):
    with CheckpointStore(None) as store:
        store.write(_result(0))
        store.write(_result(1), shard=3)
    assert list(tmp_path.iterdir()) == []


def test_load_checkpoint_last_duplicate_wins(tmp_path):
    base = str(tmp_path / "campaign.jsonl")
    older = _result(0)
    newer = _result(0)
    newer.detail = "retried"
    with open(base, "w") as handle:
        handle.write(json.dumps(older.to_dict()) + "\n")
        handle.write(json.dumps(newer.to_dict()) + "\n")
    completed = load_checkpoint(base, SPEC)
    assert completed[0].detail == "retried"


# -- fingerprint store ---------------------------------------------------------


def _schedule(seed=0, faults=()):
    return FaultSchedule(nodes=4, members=3, faults=tuple(faults), seed=seed)


def test_schedule_key_ignores_seed_label():
    crash = Fault(action=ACTION_CRASH, node=2, at_ms=1.0)
    assert schedule_key(_schedule(seed=0, faults=[crash])) == schedule_key(
        _schedule(seed=99, faults=[crash])
    )
    assert schedule_key(_schedule()) != schedule_key(
        _schedule(faults=[crash])
    )


def test_fingerprint_store_roundtrips(tmp_path):
    path = str(tmp_path / "fp.jsonl")
    key = schedule_key(_schedule())
    with FingerprintStore(path) as store:
        assert store.lookup(key) is None
        assert store.record(key, "trace-a", VERDICT_OK, seed=7) is True
        assert key in store
    with FingerprintStore(path) as store:  # persisted across opens
        record = store.lookup(key)
        assert record == {
            "schedule": key,
            "trace": "trace-a",
            "verdict": VERDICT_OK,
            "seed": 7,
        }
        assert len(store) == 1


def test_fingerprint_store_novelty_is_per_trace(tmp_path):
    store = FingerprintStore(str(tmp_path / "fp.jsonl"))
    crash = Fault(action=ACTION_CRASH, node=2, at_ms=1.0)
    first = store.record(schedule_key(_schedule()), "trace-a", VERDICT_OK)
    same_trace = store.record(
        schedule_key(_schedule(faults=[crash])), "trace-a", VERDICT_OK
    )
    new_trace = store.record(
        schedule_key(_schedule(faults=[crash, Fault(action=ACTION_CRASH, node=3, at_ms=2.0)])),
        "trace-b",
        VERDICT_OK,
    )
    assert (first, same_trace, new_trace) == (True, False, True)
    assert store.trace_count == 2
    store.close()


def test_fingerprint_store_in_memory_only():
    store = FingerprintStore(None)
    key = schedule_key(_schedule())
    assert store.record(key, "trace-a", VERDICT_OK)
    assert store.lookup(key)["trace"] == "trace-a"
    store.close()


def test_fingerprint_store_skips_corrupt_lines(tmp_path):
    path = tmp_path / "fp.jsonl"
    key = schedule_key(_schedule())
    path.write_text(
        json.dumps(
            {"schedule": key, "trace": "t", "verdict": VERDICT_OK, "seed": 0}
        )
        + "\n"
        + '{"schedule": "torn'  # cut off mid-write
    )
    with FingerprintStore(str(path)) as store:
        assert len(store) == 1
        assert store.lookup(key) is not None
