"""Fault-schedule data model and systematic generation.

These pin the checker's search space: schedules are pure data that
round-trip through JSON, the explorer enumerates deterministically in
breadth-first order, the admissibility filter enforces the paper's fault-
model degree bounds (MCAN3/LCAN4), and the guided sampler is a pure
function of its seed.
"""

import pytest

from repro.check import (
    Fault,
    FaultSchedule,
    ScheduleSpace,
    enumerate_schedules,
    sample_schedules,
)
from repro.check.explorer import schedule_population
from repro.check.schedule import (
    ACTION_CRASH,
    ACTION_JOIN,
    ACTION_LEAVE,
    ACTION_OMIT,
    OMISSION_INCONSISTENT,
)
from repro.errors import CheckError

#: A deliberately tiny space for tests that iterate populations.
SMALL = ScheduleSpace(
    nodes=3,
    members=3,
    crash_offsets_ms=(0.0,),
    frame_types=("FDA",),
    nth_frames=(0,),
)


# -- Fault / FaultSchedule validation ----------------------------------------------


def test_fault_rejects_unknown_action():
    with pytest.raises(CheckError, match="unknown fault action"):
        Fault("explode", node=1)


def test_omit_fault_needs_frame_type():
    with pytest.raises(CheckError, match="frame_type"):
        Fault(ACTION_OMIT)


def test_accepting_subset_requires_inconsistent_flavour():
    with pytest.raises(CheckError, match="inconsistent"):
        Fault(ACTION_OMIT, frame_type="FDA", accepting=(1,))


def test_timed_fault_needs_node():
    with pytest.raises(CheckError, match="need a node"):
        Fault(ACTION_CRASH)


def test_schedule_rejects_fault_outside_population():
    with pytest.raises(CheckError, match="outside"):
        FaultSchedule(nodes=3, members=3, faults=(Fault(ACTION_CRASH, node=7),))


def test_schedule_rejects_bad_population():
    with pytest.raises(CheckError, match="bad population"):
        FaultSchedule(nodes=4, members=1)
    with pytest.raises(CheckError, match="bad population"):
        FaultSchedule(nodes=4, members=5)


def test_fault_is_hashable_plain_data():
    fault = Fault(
        ACTION_OMIT,
        frame_type="ELS",
        node=1,
        omission=OMISSION_INCONSISTENT,
        accepting=[2],  # lists normalize to tuples so the fault hashes
        crash_sender=True,
    )
    assert fault.accepting == (2,)
    assert hash(fault) == hash(
        Fault(
            ACTION_OMIT,
            frame_type="ELS",
            node=1,
            omission=OMISSION_INCONSISTENT,
            accepting=(2,),
            crash_sender=True,
        )
    )


def test_schedule_json_roundtrip():
    schedule = FaultSchedule(
        nodes=5,
        members=4,
        faults=(
            Fault(ACTION_CRASH, node=2, at_ms=25.0),
            Fault(ACTION_JOIN, node=4, at_ms=60.0),
            Fault(
                ACTION_OMIT,
                frame_type="RHA",
                nth=1,
                omission=OMISSION_INCONSISTENT,
                accepting=(0,),
            ),
        ),
        run_ms=300.0,
        seed=17,
    )
    assert FaultSchedule.from_dict(schedule.to_dict()) == schedule


def test_schedule_from_dict_rejects_unknown_fields():
    raw = FaultSchedule().to_dict()
    raw["bogus"] = 1
    with pytest.raises(CheckError, match="unknown schedule fields"):
        FaultSchedule.from_dict(raw)
    with pytest.raises(CheckError, match="unknown fault fields"):
        Fault.from_dict({"action": ACTION_CRASH, "node": 0, "bogus": 1})


def test_without_drops_faults_by_index():
    faults = (
        Fault(ACTION_CRASH, node=0),
        Fault(ACTION_LEAVE, node=1, at_ms=25.0),
        Fault(ACTION_CRASH, node=2, at_ms=60.0),
    )
    schedule = FaultSchedule(nodes=5, members=5, faults=faults)
    reduced = schedule.without([0, 2])
    assert reduced.faults == (faults[1],)
    assert reduced.nodes == schedule.nodes
    assert schedule.depth == 3 and reduced.depth == 1


def test_describe_mentions_every_fault():
    schedule = FaultSchedule(
        faults=(
            Fault(ACTION_CRASH, node=1, at_ms=25.0),
            Fault(
                ACTION_OMIT,
                frame_type="FDA",
                omission=OMISSION_INCONSISTENT,
                accepting=(0,),
            ),
        )
    )
    text = schedule.describe()
    assert "crash node 1 at +25ms" in text
    assert "omit FDA#0" in text
    assert "accepted-by=[0]" in text


# -- ScheduleSpace: alphabet and admissibility --------------------------------------


def test_default_alphabet_covers_all_action_kinds():
    """The default space must exercise crashes, leaves, joins (late
    joiners), consistent and inconsistent omissions, and duplicate-
    generation timing (crash_sender) — the tentpole's whole fault menu."""
    alphabet = ScheduleSpace().alphabet()
    actions = {fault.action for fault in alphabet}
    assert actions == {ACTION_CRASH, ACTION_JOIN, ACTION_LEAVE, ACTION_OMIT}
    omissions = [f for f in alphabet if f.action == ACTION_OMIT]
    assert any(f.omission == OMISSION_INCONSISTENT for f in omissions)
    assert any(f.omission != OMISSION_INCONSISTENT for f in omissions)
    assert any(f.crash_sender for f in omissions)


def test_admits_enforces_omission_degree_bounds():
    space = ScheduleSpace(max_omissions=2, max_inconsistent=1)
    consistent = Fault(ACTION_OMIT, frame_type="FDA")
    inconsistent = Fault(
        ACTION_OMIT,
        frame_type="FDA",
        nth=1,
        omission=OMISSION_INCONSISTENT,
        accepting=(0,),
    )
    assert space.admits([consistent, inconsistent])
    third = Fault(ACTION_OMIT, frame_type="ELS")
    assert not space.admits([consistent, inconsistent, third])  # > k
    second_inconsistent = Fault(
        ACTION_OMIT,
        frame_type="RHA",
        omission=OMISSION_INCONSISTENT,
        accepting=(1,),
    )
    assert not space.admits([inconsistent, second_inconsistent])  # > j


def test_admits_keeps_two_correct_members():
    space = ScheduleSpace(nodes=4, members=4)
    crashes = [Fault(ACTION_CRASH, node=n) for n in range(3)]
    assert space.admits(crashes[:2])
    assert not space.admits(crashes)  # only one member left


def test_admits_one_timed_action_per_node():
    space = ScheduleSpace()
    assert not space.admits(
        [
            Fault(ACTION_CRASH, node=0),
            Fault(ACTION_LEAVE, node=0, at_ms=25.0),
        ]
    )


# -- enumeration and sampling -------------------------------------------------------


def test_enumerate_is_breadth_first_and_deterministic():
    first = list(enumerate_schedules(SMALL, 2))
    second = list(enumerate_schedules(SMALL, 2))
    assert first == second
    depths = [s.depth for s in first]
    assert depths == sorted(depths)  # BFS: shallow schedules first
    assert depths[0] == 0  # the fault-free schedule opens the sweep
    assert set(s.seed for s in first) == set(range(len(first)))


def test_enumerate_yields_only_admissible_schedules():
    for schedule in enumerate_schedules(SMALL, 2):
        assert SMALL.admits(schedule.faults)


def test_default_depth2_population_meets_sweep_budget():
    """The acceptance criterion's bounded sweep is >= 500 schedules."""
    population = schedule_population(ScheduleSpace(), depth=2)
    assert len(population) >= 500
    assert len({s.faults for s in population}) == len(population)


def test_sample_schedules_deterministic_in_seed():
    a = list(sample_schedules(SMALL, 10, seed=3))
    b = list(sample_schedules(SMALL, 10, seed=3))
    c = list(sample_schedules(SMALL, 10, seed=4))
    assert a == b
    assert a != c
    assert all(SMALL.admits(s.faults) for s in a)
    assert all(2 <= s.depth <= 5 for s in a)


def test_population_is_exhaustive_prefix_plus_samples():
    population = schedule_population(SMALL, depth=1, samples=5, seed=9)
    exhaustive = list(enumerate_schedules(SMALL, 1))
    assert population[: len(exhaustive)] == exhaustive
    assert len(population) == len(exhaustive) + 5
    assert all(s.depth >= 2 for s in population[len(exhaustive) :])


def test_bad_generator_arguments_raise():
    with pytest.raises(CheckError, match="depth"):
        list(enumerate_schedules(SMALL, -1))
    with pytest.raises(CheckError, match="count"):
        list(sample_schedules(SMALL, -1))
