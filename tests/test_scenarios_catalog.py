"""The named scenario catalog and its QoS reports.

The catalog contract: every recipe is runnable by name against every
registered backend, same-seed runs are byte-identical, and the pinned
quality ordering on the quiet baseline — CANELy detects faster than the
SWIM rival at the defaults — holds exactly.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    QoSReport,
    ScenarioRecipe,
    recipe,
    register_recipe,
    resolve_recipe,
    run_catalog,
    run_recipe,
    scenario_names,
)

CATALOG = [
    "babbling-idiot",
    "bus-load-sweep",
    "bus-off-storm",
    "error-passive-flapping",
    "gateway-partition-stress",
    "inaccessibility-burst",
    "join-leave-churn",
    "quiet-baseline",
]


# -- registry ----------------------------------------------------------------


def test_catalog_names_are_sorted_and_complete():
    assert scenario_names() == CATALOG


def test_resolve_unknown_recipe_raises():
    with pytest.raises(ConfigurationError):
        resolve_recipe("nonsense")


def test_register_collision_raises_and_reregister_is_noop():
    existing = resolve_recipe("quiet-baseline")
    register_recipe(existing)  # same object: no-op
    clone = ScenarioRecipe(
        name="quiet-baseline",
        summary="an impostor",
        factory=existing.factory,
    )
    with pytest.raises(ConfigurationError):
        register_recipe(clone)


def test_recipe_decorator_registers_and_returns_the_factory():
    @recipe("x-test-recipe", "throwaway registration")
    def build(backend, seed, quick):  # pragma: no cover - never run
        raise AssertionError

    try:
        assert resolve_recipe("x-test-recipe").factory is build
        assert "x-test-recipe" in scenario_names()
    finally:
        from repro.scenarios.catalog import _REGISTRY

        del _REGISTRY["x-test-recipe"]


# -- running recipes ---------------------------------------------------------


@pytest.mark.parametrize("name", CATALOG)
def test_every_recipe_runs_quick_on_canely(name):
    outcome = run_recipe(name, backend="canely", seed=0, quick=True)
    assert outcome.scenario == name
    assert outcome.backend == "canely"
    readout = outcome.qos.to_dict()
    assert readout["observers"] > 0
    assert readout["window_ms"]["duration"] > 0
    # The readout always serializes, whatever the scenario did.
    json.loads(outcome.qos.to_json())


def test_unknown_backend_raises():
    with pytest.raises(ConfigurationError):
        run_recipe("quiet-baseline", backend="nonsense", quick=True)


def test_run_recipe_same_seed_is_byte_identical():
    first = run_recipe("quiet-baseline", seed=7, quick=True)
    second = run_recipe("quiet-baseline", seed=7, quick=True)
    assert first.qos.to_json() == second.qos.to_json()
    assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
        second.to_dict(), sort_keys=True
    )


def test_run_recipe_seed_changes_the_run():
    first = run_recipe("quiet-baseline", seed=0, quick=True)
    second = run_recipe("quiet-baseline", seed=1, quick=True)
    # The victim and crash instant are seed-derived; the readouts differ.
    assert first.to_dict() != second.to_dict()


# -- catalog reports ---------------------------------------------------------


@pytest.fixture(scope="module")
def baseline_report():
    return run_catalog(
        scenarios=["quiet-baseline"],
        backends=("canely", "swim"),
        seed=0,
        quick=True,
    )


def test_catalog_report_shape(baseline_report):
    report = baseline_report
    assert isinstance(report, QoSReport)
    assert report.scenarios == ["quiet-baseline"]
    assert report.backends == ["canely", "swim"]
    assert len(report.outcomes) == 2
    assert report.outcome("quiet-baseline", "swim").backend == "swim"


def test_catalog_report_json_is_deterministic(baseline_report):
    again = run_catalog(
        scenarios=["quiet-baseline"],
        backends=("canely", "swim"),
        seed=0,
        quick=True,
    )
    assert baseline_report.to_json() == again.to_json()


def test_catalog_csv_has_the_stable_columns(baseline_report):
    lines = baseline_report.to_csv().splitlines()
    assert lines[0] == ",".join(QoSReport.CSV_COLUMNS)
    assert len(lines) == 3
    assert lines[1].startswith("quiet-baseline,canely,")
    assert lines[2].startswith("quiet-baseline,swim,")


def test_catalog_render_mentions_the_qos_columns(baseline_report):
    table = baseline_report.render()
    assert "det p50 ms" in table
    assert "λ_M /node·s" in table
    assert "quiet-baseline" in table


# -- the pinned cross-backend ordering ---------------------------------------


def test_golden_quiet_baseline_canely_beats_swim(baseline_report):
    """Golden pin: at the paper defaults (Thb=10ms, Ttd=6ms) CANELy's
    silence-bound detection beats SWIM's 10ms probe rounds on the quiet
    baseline, and both detect completely with no mistakes."""
    canely = baseline_report.outcome("quiet-baseline", "canely").qos
    swim = baseline_report.outcome("quiet-baseline", "swim").qos
    canely_summary = canely.summary()
    swim_summary = swim.summary()
    assert canely_summary["detection_p50_ms"] == 13.486
    assert swim_summary["detection_p50_ms"] == 40.32
    assert (
        canely_summary["detection_p50_ms"]
        < swim_summary["detection_p50_ms"]
    )
    for summary in (canely_summary, swim_summary):
        assert summary["completeness"] == 1.0
        assert summary["mistakes"] == 0
    assert canely.query_accuracy > swim.query_accuracy


def test_flapping_scenario_differentiates_the_backends():
    """Error-passive flapping is where the designs part ways: SWIM's
    probe/ack cycle refutes its wrongful removals (flaps), CANELy's
    membership removes permanently and never readmits."""
    canely = run_recipe(
        "error-passive-flapping", backend="canely", seed=0, quick=True
    ).qos
    swim = run_recipe(
        "error-passive-flapping", backend="swim", seed=0, quick=True
    ).qos
    assert len(canely.mistakes) > 0
    assert all(not mistake.refuted for mistake in canely.mistakes)
    assert canely.flaps == 0
    assert len(swim.mistakes) > 0
    assert all(mistake.refuted for mistake in swim.mistakes)
    assert swim.flaps == len(swim.mistakes)
