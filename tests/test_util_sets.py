"""Unit tests for the NodeSet bit vector."""

import pytest

from repro.errors import ConfigurationError
from repro.util.sets import MAX_CAPACITY, WIDE_MAX_CAPACITY, NodeSet


def test_empty_set():
    empty = NodeSet.empty()
    assert len(empty) == 0
    assert not empty
    assert list(empty) == []


def test_construction_from_iterable():
    s = NodeSet([3, 1, 5])
    assert sorted(s) == [1, 3, 5]
    assert len(s) == 3


def test_universe():
    u = NodeSet.universe(capacity=8)
    assert sorted(u) == list(range(8))


def test_single():
    s = NodeSet.single(7)
    assert list(s) == [7]


def test_contains():
    s = NodeSet([2, 4])
    assert 2 in s
    assert 3 not in s
    assert -1 not in s
    assert 1000 not in s


def test_union():
    assert sorted(NodeSet([1]) | NodeSet([2])) == [1, 2]


def test_intersection():
    assert sorted(NodeSet([1, 2, 3]) & NodeSet([2, 3, 4])) == [2, 3]


def test_difference():
    assert sorted(NodeSet([1, 2, 3]) - NodeSet([2])) == [1, 3]


def test_complement():
    s = NodeSet([0, 2], capacity=4)
    assert sorted(s.complement()) == [1, 3]


def test_add_remove_immutability():
    s = NodeSet([1])
    added = s.add(2)
    assert sorted(added) == [1, 2]
    assert sorted(s) == [1]  # original untouched
    removed = added.remove(1)
    assert sorted(removed) == [2]


def test_remove_absent_is_noop():
    s = NodeSet([1])
    assert sorted(s.remove(5)) == [1]


def test_isdisjoint_and_issubset():
    assert NodeSet([1]).isdisjoint(NodeSet([2]))
    assert not NodeSet([1, 2]).isdisjoint(NodeSet([2]))
    assert NodeSet([1]).issubset(NodeSet([1, 2]))
    assert not NodeSet([1, 3]).issubset(NodeSet([1, 2]))


def test_equality_and_hash():
    assert NodeSet([1, 2]) == NodeSet([2, 1])
    assert hash(NodeSet([1, 2])) == hash(NodeSet([2, 1]))
    assert NodeSet([1]) != NodeSet([2])


def test_equality_requires_same_capacity():
    assert NodeSet([1], capacity=8) != NodeSet([1], capacity=16)


def test_serialization_roundtrip():
    s = NodeSet([0, 7, 31, 63])
    assert NodeSet.from_bytes(s.to_bytes()) == s


def test_serialized_width():
    assert len(NodeSet.empty(capacity=64).to_bytes()) == 8
    assert len(NodeSet.empty(capacity=32).to_bytes()) == 4
    assert len(NodeSet.empty(capacity=9).to_bytes()) == 2


def test_from_bytes_rejects_overflow():
    raw = NodeSet([40], capacity=64).to_bytes()
    with pytest.raises(ConfigurationError):
        NodeSet.from_bytes(raw, capacity=32)


def test_out_of_range_member_rejected():
    with pytest.raises(ConfigurationError):
        NodeSet([8], capacity=8)
    with pytest.raises(ConfigurationError):
        NodeSet([-1])


def test_capacity_bounds():
    with pytest.raises(ConfigurationError):
        NodeSet([], capacity=0)
    with pytest.raises(ConfigurationError):
        NodeSet([], capacity=WIDE_MAX_CAPACITY + 1)


def test_wide_capacity_for_wire_free_backends():
    # Populations past the CAN data field cap are representable (SWIM
    # never serializes a view); the wire cap itself is unchanged.
    wide = NodeSet(range(100), capacity=128)
    assert len(wide) == 100
    assert 99 in wide
    assert MAX_CAPACITY == 64


def test_capacity_mismatch_rejected():
    with pytest.raises(ConfigurationError):
        NodeSet([1], capacity=8) | NodeSet([1], capacity=16)


def test_operations_with_non_nodeset_raise():
    with pytest.raises(TypeError):
        NodeSet([1]).union({2})


def test_repr_lists_members():
    assert "1, 3" in repr(NodeSet([1, 3]))
