"""Unit tests for the trace recorder."""

import io
import json

import pytest

from repro.sim.trace import JsonlSink, TraceRecorder, record_to_dict


def test_record_and_len():
    trace = TraceRecorder()
    trace.record(1, "bus.tx", node=0, bits=100)
    assert len(trace) == 1


def test_disabled_recorder_drops_records():
    trace = TraceRecorder(enabled=False)
    trace.record(1, "bus.tx")
    assert len(trace) == 0


def test_select_exact_category():
    trace = TraceRecorder()
    trace.record(1, "bus.tx")
    trace.record(2, "bus.deliver")
    assert len(trace.select(category="bus.tx")) == 1


def test_select_prefix_category():
    trace = TraceRecorder()
    trace.record(1, "bus.tx")
    trace.record(2, "bus.deliver")
    trace.record(3, "msh.view")
    assert len(trace.select(category="bus.")) == 2


def test_select_by_node():
    trace = TraceRecorder()
    trace.record(1, "bus.deliver", node=3)
    trace.record(2, "bus.deliver", node=4)
    assert [r.node for r in trace.select(node=3)] == [3]


def test_select_with_predicate():
    trace = TraceRecorder()
    trace.record(1, "bus.tx", bits=50)
    trace.record(2, "bus.tx", bits=150)
    heavy = trace.select(category="bus.tx", predicate=lambda r: r.data["bits"] > 100)
    assert [r.time for r in heavy] == [2]


def test_count():
    trace = TraceRecorder()
    for _ in range(3):
        trace.record(1, "node.crash")
    assert trace.count("node.crash") == 3


def test_clear():
    trace = TraceRecorder()
    trace.record(1, "x")
    trace.clear()
    assert len(trace) == 0


def test_iteration_preserves_order():
    trace = TraceRecorder()
    trace.record(5, "a")
    trace.record(3, "b")  # append order, not time order
    assert [r.category for r in trace] == ["a", "b"]


def test_payload_accessible():
    trace = TraceRecorder()
    trace.record(1, "bus.tx", node=2, mid="m", kind="none")
    record = trace.select(category="bus.tx")[0]
    assert record.data["kind"] == "none"
    assert record.node == 2


def test_select_time_window():
    trace = TraceRecorder()
    for t in range(10):
        trace.record(t, "bus.tx")
    bounded = trace.select(category="bus.tx", start=3, end=6)
    assert [r.time for r in bounded] == [3, 4, 5, 6]


def test_window_is_inclusive_and_cross_category():
    trace = TraceRecorder()
    trace.record(1, "a")
    trace.record(2, "b")
    trace.record(3, "c")
    assert [r.category for r in trace.window(2, 3)] == ["b", "c"]


def test_count_prefix():
    trace = TraceRecorder()
    trace.record(1, "bus.tx")
    trace.record(2, "bus.deliver")
    trace.record(3, "msh.view")
    assert trace.count("bus.") == 2
    assert trace.count("bus.tx") == 1
    assert trace.count("nothing") == 0


def test_categories_breakdown():
    trace = TraceRecorder()
    trace.record(1, "b")
    trace.record(2, "a")
    trace.record(3, "a")
    assert trace.categories() == {"a": 2, "b": 1}


def test_last_time_tracks_maximum():
    trace = TraceRecorder()
    assert trace.last_time == 0
    trace.record(7, "a")
    trace.record(3, "b")  # out-of-order append must not lower it
    assert trace.last_time == 7


def test_select_category_and_node_combined():
    trace = TraceRecorder()
    trace.record(1, "bus.deliver", node=0)
    trace.record(2, "bus.deliver", node=1)
    trace.record(3, "bus.tx", node=1)
    hits = trace.select(category="bus.deliver", node=1)
    assert [(r.time, r.node) for r in hits] == [(2, 1)]


def test_prefix_select_preserves_insertion_order():
    trace = TraceRecorder()
    trace.record(1, "bus.tx")
    trace.record(2, "bus.deliver")
    trace.record(3, "bus.tx")
    assert [r.time for r in trace.select(category="bus.")] == [1, 2, 3]


# -- ring-buffer mode ---------------------------------------------------------


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        TraceRecorder(capacity=0)


def test_ring_buffer_evicts_oldest():
    trace = TraceRecorder(capacity=3)
    for t in range(5):
        trace.record(t, "a", node=t)
    assert len(trace) == 3
    assert trace.evicted == 2
    assert [r.time for r in trace] == [2, 3, 4]


def test_ring_buffer_indexes_stay_consistent():
    trace = TraceRecorder(capacity=4)
    for t in range(10):
        trace.record(t, "even" if t % 2 == 0 else "odd", node=t % 3)
    assert trace.count("even") + trace.count("odd") == 4
    for category in ("even", "odd"):
        for record in trace.select(category=category):
            assert record.category == category
    for node in (0, 1, 2):
        for record in trace.select(node=node):
            assert record.node == node


def test_ring_buffer_compaction_keeps_queries_correct():
    # Push far past the compaction threshold so the backing list shifts.
    trace = TraceRecorder(capacity=10)
    total = 5000
    for t in range(total):
        trace.record(t, f"c{t % 4}", node=t % 2)
    assert len(trace) == 10
    assert trace.evicted == total - 10
    expected = list(range(total - 10, total))
    assert [r.time for r in trace] == expected
    got = sorted(r.time for c in range(4) for r in trace.select(category=f"c{c}"))
    assert got == expected


# -- sinks and export ---------------------------------------------------------


def test_sink_sees_every_record_even_past_capacity():
    trace = TraceRecorder(capacity=2)
    seen = []
    trace.add_sink(lambda record: seen.append(record.time))
    for t in range(5):
        trace.record(t, "a")
    assert seen == [0, 1, 2, 3, 4]
    assert len(trace) == 2


def test_remove_sink_stops_streaming():
    trace = TraceRecorder()
    seen = []
    sink = trace.add_sink(lambda record: seen.append(record.time))
    trace.record(1, "a")
    trace.remove_sink(sink)
    trace.record(2, "a")
    assert seen == [1]


def test_clear_keeps_sinks_registered():
    trace = TraceRecorder()
    seen = []
    trace.add_sink(lambda record: seen.append(record.time))
    trace.record(1, "a")
    trace.clear()
    assert len(trace) == 0
    trace.record(2, "a")
    assert seen == [1, 2]


def test_record_to_dict_projects_payload():
    trace = TraceRecorder()
    trace.record(5, "msh.view", node=1, members={3, 1, 2})
    out = record_to_dict(next(iter(trace)))
    assert out["time"] == 5 and out["node"] == 1
    assert sorted(out["data"]["members"]) == [1, 2, 3]


def test_export_jsonl_round_trips():
    trace = TraceRecorder()
    trace.record(1, "a", node=0, bits=10)
    trace.record(2, "b", node=1)
    buffer = io.StringIO()
    assert trace.export_jsonl(buffer) == 2
    lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
    assert [entry["category"] for entry in lines] == ["a", "b"]
    assert lines[0]["data"] == {"bits": 10}


def test_jsonl_sink_streams_live(tmp_path):
    path = tmp_path / "trace.jsonl"
    trace = TraceRecorder(capacity=1)
    with JsonlSink(str(path)) as sink:
        trace.add_sink(sink)
        for t in range(4):
            trace.record(t, "a")
    assert sink.records_written == 4
    assert len(path.read_text().splitlines()) == 4


def test_jsonl_sink_context_manager_closes_on_exception(tmp_path):
    """The ``with`` block closes (and flushes) the file even when the body
    raises, so a crashed campaign still leaves a readable JSONL tail."""
    path = tmp_path / "trace.jsonl"
    trace = TraceRecorder()
    trace.record(1, "bus.tx", node=0)
    with pytest.raises(RuntimeError, match="mid-run"):
        with JsonlSink(str(path)) as sink:
            sink(next(iter(trace)))
            raise RuntimeError("mid-run")
    assert sink._handle.closed
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["category"] == "bus.tx"


def test_failing_sink_does_not_corrupt_recorder():
    """A sink raising mid-record loses nothing: the record is already
    stored and indexed, and the recorder keeps working once the broken
    sink is removed."""
    trace = TraceRecorder()

    def broken(_record):
        raise IOError("disk full")

    trace.add_sink(broken)
    with pytest.raises(IOError):
        trace.record(1, "bus.tx", node=0)
    trace.remove_sink(broken)
    trace.record(2, "bus.deliver", node=1)
    assert len(trace) == 2
    assert [r.category for r in trace] == ["bus.tx", "bus.deliver"]
    assert len(trace.select(category="bus.tx")) == 1
    assert len(trace.select(node=1)) == 1
    assert trace.last_time == 2


def test_ring_buffer_eviction_with_jsonl_sink_attached():
    """Ring-buffer eviction and a streaming JsonlSink compose: memory
    stays bounded at ``capacity`` while the sink receives the full
    history, and the surviving indexes answer queries correctly."""
    buffer = io.StringIO()
    trace = TraceRecorder(capacity=2)
    sink = JsonlSink(buffer)
    trace.add_sink(sink)
    for t in range(5):
        trace.record(t, "a" if t % 2 else "b", node=t)
    assert len(trace) == 2
    assert trace.evicted == 3
    assert sink.records_written == 5
    streamed = [json.loads(line) for line in buffer.getvalue().splitlines()]
    assert [entry["time"] for entry in streamed] == [0, 1, 2, 3, 4]
    # Only the retained tail is queryable, with consistent indexes.
    assert [r.time for r in trace.select(category="a")] == [3]
    assert [r.time for r in trace.select(node=4)] == [4]
    sink.close()
    assert not buffer.closed  # the sink does not own a caller's handle


# -- columnar storage mode ----------------------------------------------------
#
# ColumnarTraceRecorder must be indistinguishable from the row recorder for
# every query: same records, same values, same order. The parity harness
# records one mixed workload into both and compares each public accessor.


from repro.sim.trace import ColumnarTraceRecorder
import repro.sim.trace as trace_mod


def _mixed_workload(trace):
    trace.record(1, "bus.tx", node=0, bits=100, mid="m0")
    trace.record(2, "bus.deliver", node=1, mid="m0")
    trace.record(2, "bus.deliver", node=2, mid="m0")
    trace.record_row(3, "bus.deliver", 0, {"mid": "m1", "remote": True})
    trace.record(5, "msh.view", node=1, members=[0, 1, 2])
    trace.record(4, "fd.nty", node=2)  # out-of-order append
    trace.record(7, "bus.tx", node=2, bits=60, mid="m2")
    return trace


def _both():
    return _mixed_workload(TraceRecorder()), _mixed_workload(ColumnarTraceRecorder())


def test_columnar_iteration_matches_row_recorder():
    row, col = _both()
    assert len(row) == len(col)
    assert [record_to_dict(r) for r in row] == [record_to_dict(r) for r in col]


def test_columnar_select_matches_row_recorder():
    row, col = _both()
    queries = [
        dict(category="bus.deliver"),
        dict(category="bus."),
        dict(node=2),
        dict(category="bus.deliver", node=0),
        dict(start=2, end=4),
        dict(category="bus.", predicate=lambda r: r.data.get("bits", 0) > 50),
        dict(category="absent"),
        dict(node=99),
    ]
    for query in queries:
        got = [record_to_dict(r) for r in col.select(**query)]
        want = [record_to_dict(r) for r in row.select(**query)]
        assert got == want, query


def test_columnar_count_categories_window_match():
    row, col = _both()
    for category in ("bus.tx", "bus.", "msh.view", "absent", "absent."):
        assert col.count(category) == row.count(category)
    assert col.categories() == row.categories()
    assert [record_to_dict(r) for r in col.window(2, 5)] == [
        record_to_dict(r) for r in row.window(2, 5)
    ]
    assert col.last_time == row.last_time == 7


def test_columnar_category_columns_match():
    row, col = _both()
    for category in ("bus.deliver", "bus.tx", "absent"):
        r_times, r_nodes, r_payloads = row.category_columns(category)
        c_times, c_nodes, c_payloads = col.category_columns(category)
        assert list(c_times) == list(r_times)
        assert list(c_nodes) == list(r_nodes)
        assert c_payloads == r_payloads


def test_columnar_export_jsonl_matches_row_recorder():
    row, col = _both()
    row_buf, col_buf = io.StringIO(), io.StringIO()
    assert row.export_jsonl(row_buf) == col.export_jsonl(col_buf)
    assert row_buf.getvalue() == col_buf.getvalue()


def test_columnar_sinks_observe_real_records():
    seen = []
    col = ColumnarTraceRecorder()
    col.add_sink(lambda record: seen.append(record_to_dict(record)))
    _mixed_workload(col)
    assert seen == [record_to_dict(r) for r in col]


def test_columnar_disabled_categories_and_enabled_flag():
    col = ColumnarTraceRecorder()
    col.disable_categories("bus.deliver")
    col.record(1, "bus.deliver", node=0)
    col.record_row(1, "bus.deliver", 0, {})
    col.record(2, "bus.tx", node=0)
    assert [r.category for r in col] == ["bus.tx"]
    off = ColumnarTraceRecorder(enabled=False)
    off.record(1, "bus.tx")
    assert len(off) == 0


def test_columnar_clear_resets_queries():
    col = _mixed_workload(ColumnarTraceRecorder())
    assert col.count("bus.tx") == 2  # force the lazy indexes into being
    col.clear()
    assert len(col) == 0
    assert col.count("bus.tx") == 0
    assert col.select(category="bus.") == []
    assert col.last_time == 0
    col.record(9, "bus.tx", node=1)
    assert [r.time for r in col] == [9]


def test_columnar_rejects_ring_buffer_capacity():
    with pytest.raises(ValueError):
        ColumnarTraceRecorder(capacity=10)


def test_columnar_toggle_routes_plain_constructions(monkeypatch):
    monkeypatch.setattr(trace_mod, "COLUMNAR", True)
    assert isinstance(TraceRecorder(), ColumnarTraceRecorder)
    # Ring-buffer traces stay on row storage: columns are append-only.
    ring = TraceRecorder(capacity=4)
    assert not isinstance(ring, ColumnarTraceRecorder)
    assert ring.capacity == 4
    # Explicit subclass constructions are honoured as written.
    monkeypatch.setattr(trace_mod, "COLUMNAR", False)
    assert isinstance(ColumnarTraceRecorder(), ColumnarTraceRecorder)
    assert not isinstance(TraceRecorder(), ColumnarTraceRecorder)


def test_columnar_index_extends_incrementally():
    """Queries interleaved with recording: the lazy index must pick up
    rows appended after the first query."""
    col = ColumnarTraceRecorder()
    col.record(1, "a", node=0)
    assert col.count("a") == 1
    col.record(2, "a", node=1)
    col.record(3, "b", node=0)
    assert col.count("a") == 2
    assert [r.time for r in col.select(category="a")] == [1, 2]
    assert [r.time for r in col.select(node=0)] == [1, 3]
    assert col.categories() == {"a": 2, "b": 1}
