"""Unit tests for the trace recorder."""

from repro.sim.trace import TraceRecorder


def test_record_and_len():
    trace = TraceRecorder()
    trace.record(1, "bus.tx", node=0, bits=100)
    assert len(trace) == 1


def test_disabled_recorder_drops_records():
    trace = TraceRecorder(enabled=False)
    trace.record(1, "bus.tx")
    assert len(trace) == 0


def test_select_exact_category():
    trace = TraceRecorder()
    trace.record(1, "bus.tx")
    trace.record(2, "bus.deliver")
    assert len(trace.select(category="bus.tx")) == 1


def test_select_prefix_category():
    trace = TraceRecorder()
    trace.record(1, "bus.tx")
    trace.record(2, "bus.deliver")
    trace.record(3, "msh.view")
    assert len(trace.select(category="bus.")) == 2


def test_select_by_node():
    trace = TraceRecorder()
    trace.record(1, "bus.deliver", node=3)
    trace.record(2, "bus.deliver", node=4)
    assert [r.node for r in trace.select(node=3)] == [3]


def test_select_with_predicate():
    trace = TraceRecorder()
    trace.record(1, "bus.tx", bits=50)
    trace.record(2, "bus.tx", bits=150)
    heavy = trace.select(category="bus.tx", predicate=lambda r: r.data["bits"] > 100)
    assert [r.time for r in heavy] == [2]


def test_count():
    trace = TraceRecorder()
    for _ in range(3):
        trace.record(1, "node.crash")
    assert trace.count("node.crash") == 3


def test_clear():
    trace = TraceRecorder()
    trace.record(1, "x")
    trace.clear()
    assert len(trace) == 0


def test_iteration_preserves_order():
    trace = TraceRecorder()
    trace.record(5, "a")
    trace.record(3, "b")  # append order, not time order
    assert [r.category for r in trace] == ["a", "b"]


def test_payload_accessible():
    trace = TraceRecorder()
    trace.record(1, "bus.tx", node=2, mid="m", kind="none")
    record = trace.select(category="bus.tx")[0]
    assert record.data["kind"] == "none"
    assert record.node == 2
