"""Unit tests for the signal codec."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.signals import MessageCodec, SignalSpec


def codec():
    return MessageCodec(
        [
            SignalSpec("rpm", start_bit=0, width=16, scale=0.25),
            SignalSpec("temp", start_bit=16, width=8, scale=1.0, offset=-40.0),
            SignalSpec("torque", start_bit=24, width=12, scale=0.5, signed=True),
            SignalSpec("valid", start_bit=36, width=1),
        ]
    )


def test_pack_unpack_roundtrip():
    values = {"rpm": 3000.0, "temp": 90.0, "torque": -120.5, "valid": 1.0}
    decoded = codec().unpack(codec().pack(values))
    assert decoded["rpm"] == pytest.approx(3000.0, abs=0.25)
    assert decoded["temp"] == pytest.approx(90.0)
    assert decoded["torque"] == pytest.approx(-120.5, abs=0.5)
    assert decoded["valid"] == 1.0


def test_missing_signals_default_to_raw_zero():
    decoded = codec().unpack(codec().pack({}))
    assert decoded["rpm"] == 0.0
    assert decoded["temp"] == -40.0  # raw 0 with offset


def test_values_clamped_to_range():
    packed = codec().pack({"temp": 10_000.0})
    assert codec().unpack(packed)["temp"] == 215.0  # 255 - 40


def test_signed_clamping():
    spec = SignalSpec("s", start_bit=0, width=8, signed=True)
    assert spec.encode_raw(-1000) == -128
    assert spec.encode_raw(1000) == 127


def test_physical_range():
    spec = SignalSpec("temp", start_bit=0, width=8, offset=-40.0)
    assert spec.physical_range == (-40.0, 215.0)


def test_unknown_signal_rejected():
    with pytest.raises(ConfigurationError):
        codec().pack({"nope": 1.0})
    with pytest.raises(ConfigurationError):
        codec().signal("nope")


def test_overlap_rejected():
    with pytest.raises(ConfigurationError):
        MessageCodec(
            [
                SignalSpec("a", start_bit=0, width=8),
                SignalSpec("b", start_bit=4, width=8),
            ]
        )


def test_duplicate_names_rejected():
    with pytest.raises(ConfigurationError):
        MessageCodec(
            [
                SignalSpec("a", start_bit=0, width=4),
                SignalSpec("a", start_bit=8, width=4),
            ]
        )


def test_dlc_bound():
    with pytest.raises(ConfigurationError):
        MessageCodec([SignalSpec("a", start_bit=20, width=8)], dlc=2)


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        SignalSpec("", start_bit=0, width=8)
    with pytest.raises(ConfigurationError):
        SignalSpec("x", start_bit=0, width=0)
    with pytest.raises(ConfigurationError):
        SignalSpec("x", start_bit=60, width=8)
    with pytest.raises(ConfigurationError):
        SignalSpec("x", start_bit=0, width=8, scale=0)


def test_short_frame_rejected_on_unpack():
    with pytest.raises(ConfigurationError):
        codec().unpack(b"\x00\x01")


def test_packed_width_matches_dlc():
    small = MessageCodec([SignalSpec("a", start_bit=0, width=8)], dlc=2)
    assert len(small.pack({"a": 1})) == 2
