"""The store-and-forward gateway bridging CAN bus segments.

Covers forwarding and echo suppression, relay latency, per-port
identifier filters, the bounded queue's traced drops, attach/detach
(including the delivery-plan invalidation both must trigger under
FILTERED_DELIVERY) and the ``CanBus.detach`` primitive itself.
"""

import pytest

from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.can.driver import CanStandardLayer
from repro.can.filters import AcceptanceFilter, FilterBank
from repro.can.gateway import GATEWAY_NODE_ID, CanGateway
from repro.can.identifiers import MessageId, MessageType
from repro.errors import BusError
from repro.sim.clock import ms
from repro.sim.kernel import Simulator


def _station(bus, node_id):
    """One application station: controller + standard layer + rx log."""
    controller = CanController(node_id)
    bus.attach(controller)
    layer = CanStandardLayer(controller)
    log = []
    layer.add_data_ind(
        lambda mid, data: log.append((mid.node, mid.ref, data)),
        mtype=MessageType.DATA,
    )
    return layer, log


def _bridged_pair(sim, **gateway_kwargs):
    """Two segments bridged by a gateway, one station on each."""
    bus_a = CanBus(sim)
    bus_b = CanBus(sim)
    gateway = CanGateway(sim, **gateway_kwargs)
    gateway.attach(bus_a)
    gateway.attach(bus_b)
    sender, sender_log = _station(bus_a, 1)
    receiver, receiver_log = _station(bus_b, 2)
    return bus_a, bus_b, gateway, sender, sender_log, receiver, receiver_log


def test_frames_cross_the_bridge_exactly_once():
    sim = Simulator()
    _a, _b, gateway, sender, sender_log, _receiver, receiver_log = (
        _bridged_pair(sim)
    )
    sender.data_req(MessageId(MessageType.DATA, node=1, ref=7), b"hi")
    sim.run()
    assert receiver_log == [(1, 7, b"hi")]
    assert gateway.stats.forwarded == 1
    assert gateway.stats.dropped == 0
    # ``.ind`` includes own transmissions (paper Fig. 4), so the sender
    # hears its frame exactly once; echo suppression must prevent the
    # relay completing on B from being reflected back as a second copy.
    assert sender_log == [(1, 7, b"hi")]
    assert gateway.stats.forwarded_by_port == {1: 1}


def test_relay_latency_delays_the_copy():
    fast_sim = Simulator()
    _bridged = _bridged_pair(fast_sim)
    fast_sender = _bridged[3]
    fast_sender.data_req(MessageId(MessageType.DATA, node=1, ref=0), b"x")
    fast_sim.run()
    fast_done = fast_sim.now

    slow_sim = Simulator()
    slow = _bridged_pair(slow_sim, latency=ms(3))
    slow[3].data_req(MessageId(MessageType.DATA, node=1, ref=0), b"x")
    slow_sim.run()
    assert slow[6] == [(1, 0, b"x")]
    assert slow_sim.now >= fast_done + ms(3)


def test_port_filters_limit_what_crosses():
    sim = Simulator()
    bus_a = CanBus(sim)
    bus_b = CanBus(sim)
    gateway = CanGateway(sim)
    # Only node 1's identifiers may leave segment A.
    gateway.attach(bus_a, filters=FilterBank([AcceptanceFilter.for_sender(1)]))
    gateway.attach(bus_b)
    allowed, _ = _station(bus_a, 1)
    blocked, _ = _station(bus_a, 3)
    _receiver, receiver_log = _station(bus_b, 2)
    allowed.data_req(MessageId(MessageType.DATA, node=1, ref=1), b"yes")
    blocked.data_req(MessageId(MessageType.DATA, node=3, ref=2), b"no")
    sim.run()
    assert receiver_log == [(1, 1, b"yes")]
    assert gateway.stats.forwarded == 1


def test_bounded_queue_drops_are_counted_and_traced():
    sim = Simulator()
    _a, _b, gateway, sender, _slog, _receiver, receiver_log = _bridged_pair(
        sim, latency=ms(5), queue_limit=1
    )
    for ref in range(3):
        sender.data_req(MessageId(MessageType.DATA, node=1, ref=ref), b"q")
    sim.run()
    # Back-to-back completions on segment A while the first relay sits in
    # its 5 ms store-and-forward window: one outstanding frame allowed,
    # the rest dropped at the bridge.
    assert gateway.stats.forwarded == 1
    assert gateway.stats.dropped == 2
    assert gateway.stats.dropped_by_port == {1: 2}
    assert len(receiver_log) == 1
    drops = sim.trace.select(category="gw.drop")
    assert len(drops) == 2
    assert drops[0].data["port"] == 1
    assert sim.metrics.counter("gw.dropped").value == 2


def test_attach_mid_run_invalidates_delivery_plans():
    sim = Simulator()
    bus_a = CanBus(sim)
    bus_b = CanBus(sim)
    sender, _ = _station(bus_a, 1)
    _receiver, receiver_log = _station(bus_b, 2)
    # Traffic before the bridge exists warms segment A's dispatch plan.
    sender.data_req(MessageId(MessageType.DATA, node=1, ref=0), b"pre")
    sim.run()
    assert receiver_log == []
    gateway = CanGateway(sim)
    gateway.attach(bus_a)
    gateway.attach(bus_b)
    sender.data_req(MessageId(MessageType.DATA, node=1, ref=1), b"post")
    sim.run()
    assert receiver_log == [(1, 1, b"post")]


def test_detach_stops_forwarding_and_later_traffic_still_flows():
    sim = Simulator()
    bus_a, bus_b, gateway, sender, _slog, _receiver, receiver_log = (
        _bridged_pair(sim)
    )
    sender.data_req(MessageId(MessageType.DATA, node=1, ref=0), b"one")
    sim.run()
    gateway.detach(bus_b)
    sender.data_req(MessageId(MessageType.DATA, node=1, ref=1), b"two")
    sim.run()
    assert receiver_log == [(1, 0, b"one")]
    assert gateway.segments == [bus_a]
    with pytest.raises(BusError):
        gateway.detach(bus_b)


def test_attach_validates_arguments():
    sim = Simulator()
    bus = CanBus(sim)
    gateway = CanGateway(sim)
    gateway.attach(bus)
    with pytest.raises(BusError):
        gateway.attach(bus)
    with pytest.raises(BusError):
        CanGateway(sim, latency=-1)
    with pytest.raises(BusError):
        CanGateway(sim, queue_limit=0)
    assert gateway.ports[0].node_id == GATEWAY_NODE_ID


def test_three_way_bridge_fans_out_to_every_other_segment():
    sim = Simulator()
    buses = [CanBus(sim) for _ in range(3)]
    gateway = CanGateway(sim)
    for bus in buses:
        gateway.attach(bus)
    sender, sender_log = _station(buses[0], 1)
    _r1, log_1 = _station(buses[1], 2)
    _r2, log_2 = _station(buses[2], 3)
    sender.data_req(MessageId(MessageType.DATA, node=1, ref=9), b"all")
    sim.run()
    assert log_1 == [(1, 9, b"all")]
    assert log_2 == [(1, 9, b"all")]
    assert sender_log == [(1, 9, b"all")]  # own tx only, never a reflection
    assert gateway.stats.forwarded == 2


def test_bus_detach_removes_the_controller():
    sim = Simulator()
    bus = CanBus(sim)
    controller = CanController(4)
    bus.attach(controller)
    bus.detach(controller)
    # The slot is free again and the controller is unhomed.
    replacement = CanController(4)
    bus.attach(replacement)
    with pytest.raises(BusError):
        bus.detach(controller)  # no longer the attached controller


def test_bus_detach_rejects_unattached_controllers():
    sim = Simulator()
    bus = CanBus(sim)
    with pytest.raises(BusError):
        bus.detach(CanController(9))
