"""Unit tests for the CAN frame model."""

import pytest

from repro.can.frame import CanFrame, data_frame, remote_frame
from repro.can.identifiers import MessageId, MessageType
from repro.errors import FrameError

MID = MessageId(MessageType.DATA, node=3, ref=9)


def test_data_frame_basics():
    frame = data_frame(MID, b"\x01\x02\x03")
    assert frame.dlc == 3
    assert not frame.remote
    assert frame.identifier == MID.encode()


def test_remote_frame_basics():
    frame = remote_frame(MID)
    assert frame.remote
    assert frame.dlc == 0
    assert frame.data == b""


def test_remote_frame_with_data_rejected():
    with pytest.raises(FrameError):
        CanFrame(mid=MID, data=b"\x00", remote=True)


def test_oversized_payload_rejected():
    with pytest.raises(FrameError):
        CanFrame(mid=MID, data=bytes(9))


def test_non_bytes_payload_rejected():
    with pytest.raises(FrameError):
        CanFrame(mid=MID, data="text")


def test_frames_are_value_objects():
    assert data_frame(MID, b"x") == data_frame(MID, b"x")
    assert data_frame(MID, b"x") != data_frame(MID, b"y")
    assert data_frame(MID) != remote_frame(MID)


def test_wire_bits_positive_and_bounded():
    frame = data_frame(MID, bytes(8))
    assert 0 < frame.wire_bits() <= frame.worst_case_bits()


def test_remote_frame_shorter_than_full_data_frame():
    assert remote_frame(MID).wire_bits() < data_frame(MID, bytes(8)).wire_bits()


def test_repr_shows_kind():
    assert "RTR" in repr(remote_frame(MID))
    assert "DATA[2]" in repr(data_frame(MID, b"ab"))


def test_frozen():
    frame = data_frame(MID, b"x")
    with pytest.raises(AttributeError):
        frame.data = b"y"
