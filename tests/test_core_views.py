"""Unit tests for membership views and change notifications."""

from repro.core.views import MembershipChange, MembershipView
from repro.util.sets import NodeSet


def test_view_contains_and_len():
    view = MembershipView(members=NodeSet([1, 3]), round_index=2, time=100)
    assert 1 in view
    assert 2 not in view
    assert len(view) == 2


def test_view_is_frozen():
    view = MembershipView(members=NodeSet([1]), round_index=0, time=0)
    try:
        view.round_index = 5
    except AttributeError:
        return
    raise AssertionError("view should be immutable")


def test_change_carries_active_and_failed():
    change = MembershipChange(
        active=NodeSet([0, 1]),
        failed=NodeSet([2]),
        time=50,
        local_node=0,
    )
    assert sorted(change.active) == [0, 1]
    assert sorted(change.failed) == [2]
    assert change.local_node == 0
