"""Unit tests for the inaccessibility analysis (Fig. 11 rows)."""

from repro.analysis.inaccessibility import (
    CAN_BURST_LENGTH,
    CANELY_BURST_LENGTH,
    burst_worst,
    can_inaccessibility_range,
    canely_inaccessibility_range,
    overload_frame_bits,
    scenario_catalogue,
    single_error_best,
    single_error_worst,
)


def test_lower_bound_is_14_bit_times():
    """Both columns of Fig. 11 share the 14 bit-time lower bound."""
    assert single_error_best() == 14
    assert can_inaccessibility_range()[0] == 14
    assert canely_inaccessibility_range()[0] == 14


def test_can_worst_case_is_papers_2880():
    assert can_inaccessibility_range()[1] == 2880


def test_canely_worst_case_near_papers_2160():
    lo, hi = canely_inaccessibility_range()
    assert abs(hi - 2160) / 2160 < 0.02  # catalogue bound within 2%


def test_canely_strictly_better_than_can():
    assert canely_inaccessibility_range()[1] < can_inaccessibility_range()[1]


def test_error_passive_costs_more():
    assert single_error_worst(error_passive=True) > single_error_worst(
        error_passive=False
    )


def test_superposed_flags_cost_more():
    assert single_error_worst(superposed=True) > single_error_worst(superposed=False)


def test_extended_frames_cost_more():
    assert single_error_worst(extended=True) > single_error_worst(extended=False)


def test_burst_scales_linearly():
    assert burst_worst(10) == 10 * burst_worst(1)


def test_overload_frames():
    assert overload_frame_bits(1) == 14
    assert overload_frame_bits(2) == 28


def test_catalogue_contains_bounds():
    durations = {s.duration_bits for s in scenario_catalogue()}
    assert single_error_best() in durations
    assert can_inaccessibility_range()[1] in durations
    assert canely_inaccessibility_range()[1] in durations


def test_catalogue_entries_documented():
    for scenario in scenario_catalogue():
        assert scenario.name
        assert scenario.description
        assert scenario.duration_bits > 0


def test_burst_length_constants():
    assert CAN_BURST_LENGTH == 18
    assert CANELY_BURST_LENGTH < CAN_BURST_LENGTH
