"""Unit tests for the Fig. 1 / Fig. 11 comparison tables."""

from repro.analysis.comparison import fig1_rows, fig11_rows


def test_fig1_structure():
    rows = fig1_rows()
    assert all(len(row) == 3 for row in rows)
    parameters = [row[0] for row in rows]
    assert "Membership service" in parameters
    assert "Babbling idiot avoidance" in parameters


def test_fig1_membership_contrast():
    membership = next(r for r in fig1_rows() if r[0] == "Membership service")
    assert membership[1] == "provided"
    assert membership[2] == "not provided"


def test_fig11_structure():
    rows = fig11_rows()
    assert all(len(row) == 4 for row in rows)


def test_fig11_inaccessibility_cells():
    row = next(r for r in fig11_rows() if r[0] == "Inaccessibility duration")
    assert "2880" in row[2]  # standard CAN
    assert "14" in row[3]  # CANELy keeps the same lower bound


def test_fig11_canely_provides_membership():
    row = next(r for r in fig11_rows() if r[0] == "Membership")
    assert row[2] == "not provided"
    assert "ms" in row[3]


def test_fig11_measured_overrides():
    rows = fig11_rows(
        measured={
            "membership": "12.3 ms measured",
            "clock": "16.5 us measured",
            "inaccessibility": "14 - 2190 bit-times derived",
        }
    )
    cells = {row[0]: row[3] for row in rows}
    assert cells["Membership"] == "12.3 ms measured"
    assert cells["Clock synchronization"] == "16.5 us measured"
    assert "2190" in cells["Inaccessibility duration"]
