"""Unit tests for message identifiers (the CANELy MID)."""

import pytest

from repro.can.identifiers import IDENTIFIER_BITS, MessageId, MessageType
from repro.errors import FrameError


def test_encode_decode_roundtrip():
    mid = MessageId(MessageType.RHA, node=17, ref=1234)
    assert MessageId.decode(mid.encode()) == mid


def test_identifier_fits_29_bits():
    assert IDENTIFIER_BITS == 29
    worst = MessageId(MessageType.DATA, node=255, ref=65535)
    assert worst.encode() < 1 << 29


def test_priority_order_follows_type():
    fda = MessageId(MessageType.FDA, node=255, ref=65535)
    els = MessageId(MessageType.ELS, node=0, ref=0)
    data = MessageId(MessageType.DATA, node=0, ref=0)
    assert fda < els < data  # FDA always wins arbitration


def test_ordering_matches_encoded_value():
    a = MessageId(MessageType.RHA, node=5, ref=10)
    b = MessageId(MessageType.RHA, node=4, ref=11)
    assert (a < b) == (a.encode() < b.encode())


def test_type_priority_ladder_is_the_papers():
    ladder = [
        MessageType.FDA,
        MessageType.ELS,
        MessageType.RHA,
        MessageType.JOIN,
        MessageType.LEAVE,
    ]
    values = [int(t) for t in ladder]
    assert values == sorted(values)
    assert int(MessageType.DATA) > int(MessageType.NM)


def test_node_out_of_range_rejected():
    with pytest.raises(FrameError):
        MessageId(MessageType.DATA, node=256)
    with pytest.raises(FrameError):
        MessageId(MessageType.DATA, node=-1)


def test_ref_out_of_range_rejected():
    with pytest.raises(FrameError):
        MessageId(MessageType.DATA, ref=65536)


def test_decode_rejects_out_of_range():
    with pytest.raises(FrameError):
        MessageId.decode(1 << 29)
    with pytest.raises(FrameError):
        MessageId.decode(-1)


def test_decode_rejects_unknown_type():
    # Type code 10 is unassigned (9 became SWIM, 15 is DATA).
    with pytest.raises(FrameError):
        MessageId.decode(10 << 24)


def test_frozen():
    mid = MessageId(MessageType.ELS, node=1)
    with pytest.raises(AttributeError):
        mid.node = 2


def test_repr_contains_type_name():
    assert "ELS" in repr(MessageId(MessageType.ELS, node=1))
