"""The ``repro`` package facade: eager core names, lazy subsystem names.

``import repro`` must stay cheap (the core protocol classes only); the
campaign/check/obs/perf surfaces resolve on first attribute access and are
cached. ``__all__``/``dir()`` advertise everything, so tab completion and
star-imports see one coherent API.
"""

import importlib
import sys

import pytest

import repro


def test_version_bumped_for_the_new_surface():
    major, minor, _patch = repro.__version__.split(".")
    assert (int(major), int(minor)) >= (1, 1)


def test_core_names_are_eager():
    for name in ("CanelyNetwork", "CanelyConfig", "CanelyNode",
                 "MembershipView", "MembershipChange", "NodeSet"):
        assert name in repro.__dict__, f"{name} should not be lazy"


@pytest.mark.parametrize(
    "name, module",
    [
        ("ScenarioBuilder", "repro.workloads"),
        ("FrameMatch", "repro.workloads"),
        ("run_campaign", "repro.campaign"),
        ("CampaignSpec", "repro.campaign"),
        ("default_workers", "repro.campaign"),
        ("CheckSweep", "repro.check"),
        ("ScheduleSpace", "repro.check"),
        ("explore", "repro.check"),
        ("run_selftest", "repro.check"),
        ("replay_artifact", "repro.check"),
        ("minimize_schedule", "repro.check"),
        ("standard_monitors", "repro.obs"),
        ("InvariantViolation", "repro.obs"),
        ("run_benchmarks", "repro.perf"),
        ("compare_reports", "repro.perf"),
    ],
)
def test_lazy_exports_resolve_to_their_modules(name, module):
    resolved = getattr(repro, name)
    canonical = getattr(importlib.import_module(module), name)
    assert resolved is canonical
    # Cached after first access: no repeated import machinery.
    assert repro.__dict__[name] is canonical


def test_all_names_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_dir_advertises_lazy_names():
    listing = dir(repro)
    for name in ("run_campaign", "CheckSweep", "standard_monitors",
                 "run_benchmarks", "ScenarioBuilder"):
        assert name in listing


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError, match="no_such_name"):
        repro.no_such_name


def test_import_repro_does_not_drag_in_subsystems():
    """The lazy facade's point: a fresh ``import repro`` must not import
    the campaign/check/perf machinery."""
    import subprocess

    code = (
        "import sys, repro; "
        "heavy = [m for m in sys.modules if m.startswith("
        "('repro.campaign', 'repro.check', 'repro.perf'))]; "
        "sys.exit(1 if heavy else 0)"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd="/root/repo",
    )
    assert proc.returncode == 0
