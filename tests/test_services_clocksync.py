"""Unit tests for the clock synchronization service."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.services.clocksync import ClockSyncService, VirtualClock, precision
from repro.sim.clock import ms, us


def test_virtual_clock_drift():
    clock = VirtualClock(drift=1e-4)
    assert clock.read(ms(100)) == pytest.approx(ms(100) * 1.0001)


def test_virtual_clock_adjust():
    clock = VirtualClock(drift=1e-4, offset=500.0)
    clock.adjust_to(ms(10), float(ms(10)))
    assert clock.read(ms(10)) == pytest.approx(float(ms(10)))


def test_precision_of_unsynchronized_clocks_grows():
    fast = VirtualClock(drift=1e-4)
    slow = VirtualClock(drift=-1e-4)
    clocks = {0: fast, 1: slow}
    early = precision(clocks, ms(10))
    late = precision(clocks, ms(100))
    assert late > early


def test_precision_empty():
    assert precision({}, ms(1)) == 0.0


def wire(raw_bus, node_count=4, period=ms(100), seed=0):
    net = raw_bus(node_count)
    rng = random.Random(seed)
    clocks, services = {}, {}
    for node_id, layer in net.layers.items():
        clock = VirtualClock(drift=rng.uniform(-1e-4, 1e-4))
        service = ClockSyncService(
            layer,
            net.timers[node_id],
            net.sim,
            clock,
            resync_period=period,
            reception_jitter_rng=random.Random(seed + node_id),
        )
        clocks[node_id] = clock
        services[node_id] = service
        service.start()
    return net, clocks, services


def test_synchronized_precision_tens_of_us(raw_bus):
    """The Fig. 11 claim: clock sync precision in the tens of µs."""
    net, clocks, _ = wire(raw_bus)
    net.sim.run_until(ms(1000))
    assert precision(clocks, net.sim.now) < us(50)


def test_sync_beats_free_running(raw_bus):
    net, clocks, services = wire(raw_bus)
    net.sim.run_until(ms(1000))
    synced = precision(clocks, net.sim.now)
    # Free-running clocks with the same drifts diverge far more over 1 s.
    free = {
        node_id: VirtualClock(drift=clock.drift)
        for node_id, clock in clocks.items()
    }
    assert synced < precision(free, net.sim.now)


def test_resync_messages_cluster(raw_bus):
    """All nodes request the round's resync; the bus carries few frames."""
    net, _, services = wire(raw_bus)
    net.sim.run_until(ms(350))  # ~3 rounds
    csync_frames = [
        r
        for r in net.sim.trace.select(category="bus.tx")
        if r.data["mid"].mtype.name == "CSYNC"
    ]
    assert len(csync_frames) <= 4  # one (clustered) frame per round


def test_resync_counter(raw_bus):
    net, _, services = wire(raw_bus)
    net.sim.run_until(ms(550))
    assert services[0].resyncs >= 5


def test_stop_halts_participation(raw_bus):
    net, _, services = wire(raw_bus, node_count=2)
    services[0].stop()
    services[1].stop()
    net.sim.run_until(ms(500))
    assert services[0].resyncs == 0


def test_invalid_period_rejected(raw_bus):
    net = raw_bus(1)
    with pytest.raises(ConfigurationError):
        ClockSyncService(
            net.layers[0], net.timers[0], net.sim, VirtualClock(), resync_period=0
        )
