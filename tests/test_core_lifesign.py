"""Unit tests for the life-sign policy (paper Section 6.1)."""

from repro.core.lifesign import (
    NodeTraffic,
    explicit_lifesign_nodes,
    needs_explicit_lifesign,
)
from repro.sim.clock import ms


def test_fast_periodic_node_needs_no_els():
    traffic = NodeTraffic(node_id=1, min_period=ms(5))
    assert not needs_explicit_lifesign(traffic, thb=ms(10))


def test_slow_periodic_node_needs_els():
    traffic = NodeTraffic(node_id=1, min_period=ms(50))
    assert needs_explicit_lifesign(traffic, thb=ms(10))


def test_period_equal_to_thb_is_sufficient():
    traffic = NodeTraffic(node_id=1, min_period=ms(10))
    assert not needs_explicit_lifesign(traffic, thb=ms(10))


def test_sporadic_node_needs_els():
    traffic = NodeTraffic(node_id=1, min_period=None)
    assert traffic.is_sporadic_only
    assert needs_explicit_lifesign(traffic, thb=ms(10))


def test_explicit_lifesign_nodes_b_count():
    """The paper's b parameter: the subset needing explicit life-signs."""
    population = [
        NodeTraffic(0, ms(5)),
        NodeTraffic(1, ms(50)),
        NodeTraffic(2, None),
        NodeTraffic(3, ms(9)),
    ]
    assert explicit_lifesign_nodes(population, thb=ms(10)) == [1, 2]
