"""Unit tests for the media redundancy scheme."""

import pytest

from repro.can.redundancy import MediaSet
from repro.errors import ConfigurationError


def test_default_dual_media():
    media = MediaSet()
    assert media.media_count == 2
    assert media.healthy_media_count() == 2


def test_at_least_one_medium_required():
    with pytest.raises(ConfigurationError):
        MediaSet(media_count=0)


def test_single_medium_failure_does_not_partition():
    media = MediaSet(media_count=2)
    media.fail_medium(0)
    assert media.channel_available(3)
    assert not media.partitioned(range(8))


def test_all_media_failed_partitions():
    media = MediaSet(media_count=2)
    media.fail_medium(0)
    media.fail_medium(1)
    assert not media.channel_available(3)
    assert media.partitioned([3])


def test_restore_medium():
    media = MediaSet(media_count=1)
    media.fail_medium(0)
    media.restore_medium(0)
    assert media.channel_available(0)


def test_tap_failure_affects_one_node_only():
    media = MediaSet(media_count=2)
    media.fail_tap(0, node_id=5)
    media.fail_tap(1, node_id=5)
    assert not media.channel_available(5)
    assert media.channel_available(6)


def test_tap_failure_on_one_medium_is_masked():
    media = MediaSet(media_count=2)
    media.fail_tap(0, node_id=5)
    assert media.channel_available(5)


def test_restore_tap():
    media = MediaSet(media_count=1)
    media.fail_tap(0, node_id=2)
    assert not media.channel_available(2)
    media.restore_tap(0, node_id=2)
    assert media.channel_available(2)


def test_unknown_medium_rejected():
    media = MediaSet(media_count=1)
    with pytest.raises(ConfigurationError):
        media.fail_medium(7)


def test_combined_failures_still_no_partition():
    """The Columbus'-egg claim: any single fault per medium pair is masked."""
    media = MediaSet(media_count=2)
    media.fail_medium(0)
    media.fail_tap(1, node_id=3)
    # Node 3 lost medium 1's tap and medium 0 entirely: partitioned.
    assert not media.channel_available(3)
    # Everyone else still reaches the channel through medium 1.
    assert all(media.channel_available(n) for n in range(8) if n != 3)
