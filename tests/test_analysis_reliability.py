"""Unit tests for the inconsistent-omission rate estimate."""

import pytest

from repro.analysis.reliability import (
    InconsistencyEstimate,
    bus_frame_rate,
    inconsistent_omission_rate,
    subset_split_probability,
)
from repro.errors import ConfigurationError


def test_split_probability_shape():
    assert subset_split_probability(1) == 0.0
    assert subset_split_probability(2) == pytest.approx(0.5)
    assert subset_split_probability(32) == pytest.approx(1.0, abs=1e-6)
    # Monotonically increasing in the receiver count.
    values = [subset_split_probability(n) for n in range(2, 10)]
    assert values == sorted(values)


def test_zero_ber_means_zero_rate():
    estimate = inconsistent_omission_rate(0.0, receivers=8, frames_per_second=1000)
    assert estimate.per_frame_probability == 0.0
    assert estimate.per_hour == 0.0
    assert estimate.expected_j >= 1  # the bound never goes below one


def test_papers_order_of_magnitude():
    """[18]'s headline: on a loaded 1 Mbps bus in an aggressive environment
    (ber ~1e-6), inconsistencies strike a few times per hour — far above
    the 1e-9/h targets of safety-critical systems."""
    rate = bus_frame_rate(1_000_000, utilization=0.9)
    estimate = inconsistent_omission_rate(1e-6, receivers=16, frames_per_second=rate)
    assert 1.0 < estimate.per_hour < 100.0


def test_benign_environment_much_rarer():
    rate = bus_frame_rate(1_000_000, utilization=0.3)
    harsh = inconsistent_omission_rate(1e-6, receivers=16, frames_per_second=rate)
    benign = inconsistent_omission_rate(1e-9, receivers=16, frames_per_second=rate)
    assert benign.per_hour < harsh.per_hour / 100


def test_rate_scales_with_load():
    low = inconsistent_omission_rate(1e-6, 8, frames_per_second=100)
    high = inconsistent_omission_rate(1e-6, 8, frames_per_second=1000)
    assert high.per_hour == pytest.approx(10 * low.per_hour)


def test_expected_j_grows_with_reference_interval():
    kwargs = dict(ber=1e-4, receivers=8, frames_per_second=5000)
    short = inconsistent_omission_rate(reference_seconds=0.05, **kwargs)
    long = inconsistent_omission_rate(reference_seconds=60.0, **kwargs)
    assert long.expected_j > short.expected_j


def test_validation():
    with pytest.raises(ConfigurationError):
        inconsistent_omission_rate(-0.1, 8, 100)
    with pytest.raises(ConfigurationError):
        inconsistent_omission_rate(1e-6, 8, -1)
    with pytest.raises(ConfigurationError):
        inconsistent_omission_rate(1e-6, 8, 100, reference_seconds=0)
    with pytest.raises(ConfigurationError):
        inconsistent_omission_rate(1e-6, 8, 100, frame_bits=1)
    with pytest.raises(ConfigurationError):
        bus_frame_rate(utilization=1.5)
    with pytest.raises(ConfigurationError):
        bus_frame_rate(bit_rate=0)


def test_frame_rate():
    # ~90% of 1 Mbps over 135-bit frames: ~6.6 kframe/s.
    assert 6000 < bus_frame_rate() < 7000
