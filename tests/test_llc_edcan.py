"""Unit tests for EDCAN (eager diffusion reliable broadcast)."""

from repro.can.errormodel import FaultInjector, FaultKind
from repro.can.identifiers import MessageType
from repro.llc.edcan import Edcan


def wire(net, j=2):
    protocols = {}
    delivered = {}
    for node_id, layer in net.layers.items():
        protocol = Edcan(layer, inconsistent_degree=j)
        log = []
        protocol.on_deliver(lambda s, r, d, log=log: log.append((s, r, d)))
        protocols[node_id] = protocol
        delivered[node_id] = log
    return protocols, delivered


def test_failure_free_broadcast_delivers_everywhere(raw_bus):
    net = raw_bus(4)
    protocols, delivered = wire(net)
    ref = protocols[0].broadcast(b"hello")
    net.sim.run()
    for node_id in net.layers:
        assert delivered[node_id] == [(0, ref, b"hello")]


def test_failure_free_cost_is_two_physical_frames(raw_bus):
    """Original + one clustered echo: the eager-diffusion price."""
    net = raw_bus(5)
    protocols, _ = wire(net)
    protocols[0].broadcast(b"x")
    net.sim.run()
    assert net.bus.stats.physical_frames == 2


def test_no_duplicate_deliveries(raw_bus):
    net = raw_bus(4)
    protocols, delivered = wire(net)
    protocols[0].broadcast(b"a")
    protocols[0].broadcast(b"b")
    net.sim.run()
    for log in delivered.values():
        assert len(log) == 2
        assert {d for _, _, d in log} == {b"a", b"b"}


def test_refs_increment(raw_bus):
    net = raw_bus(2)
    protocols, _ = wire(net)
    assert protocols[0].broadcast(b"") == 0
    assert protocols[0].broadcast(b"") == 1


def test_survives_inconsistent_omission_with_sender_crash(raw_bus):
    """The headline property: delivery despite sender failure (LCAN2 fix)."""
    injector = FaultInjector()
    injector.fault_on_frame(
        lambda f: f.mid.mtype is MessageType.DATA,
        FaultKind.INCONSISTENT_OMISSION,
        accepting=[2],
        crash_sender=True,
    )
    net = raw_bus(4, injector=injector)
    protocols, delivered = wire(net)
    ref = protocols[0].broadcast(b"critical")
    net.sim.run()
    # Node 2 got the original; its echo must reach 1 and 3 even though the
    # sender crashed before retransmitting.
    for node_id in (1, 2, 3):
        assert delivered[node_id] == [(0, ref, b"critical")]


def test_duplicates_seen_counts_copies(raw_bus):
    net = raw_bus(3)
    protocols, _ = wire(net)
    ref = protocols[0].broadcast(b"z")
    net.sim.run()
    assert protocols[1].duplicates_seen(0, ref) == 2  # original + echo


def test_echo_aborted_after_j_copies(raw_bus):
    """No more than j+1-ish copies circulate in the fault-free case."""
    net = raw_bus(6)
    protocols, _ = wire(net, j=1)
    protocols[0].broadcast(b"q")
    net.sim.run()
    assert net.bus.stats.physical_frames <= 3
