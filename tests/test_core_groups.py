"""Unit tests for process group membership on top of site membership."""

import pytest

from repro.can.errormodel import FaultInjector, FaultKind
from repro.can.identifiers import MessageType
from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.errors import ConfigurationError
from repro.sim.clock import ms

CONFIG = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))


def bootstrap(node_count=4, injector=None):
    net = CanelyNetwork(node_count=node_count, config=CONFIG, injector=injector)
    net.join_all()
    net.run_for(ms(400))
    assert net.views_agree()
    return net


def group_views(net, group_id):
    return {
        node_id: node.groups.group_view(group_id).processes
        for node_id, node in net.nodes.items()
        if not node.crashed
    }


def test_join_group_visible_everywhere():
    net = bootstrap()
    net.node(1).groups.join_group(7, process_id=0)
    net.run_for(ms(10))
    for processes in group_views(net, 7).values():
        assert processes == {(1, 0)}


def test_multiple_processes_per_node():
    net = bootstrap()
    net.node(2).groups.join_group(3, process_id=0)
    net.node(2).groups.join_group(3, process_id=1)
    net.run_for(ms(10))
    for processes in group_views(net, 3).values():
        assert processes == {(2, 0), (2, 1)}


def test_leave_group():
    net = bootstrap()
    net.node(0).groups.join_group(1, process_id=4)
    net.node(1).groups.join_group(1, process_id=4)
    net.run_for(ms(10))
    net.node(0).groups.leave_group(1, process_id=4)
    net.run_for(ms(10))
    for processes in group_views(net, 1).values():
        assert processes == {(1, 4)}


def test_duplicate_join_is_idempotent():
    net = bootstrap()
    net.node(0).groups.join_group(2, process_id=0)
    net.run_for(ms(10))
    version_before = net.node(1).groups.group_view(2).version
    net.node(0).groups.join_group(2, process_id=0)
    net.run_for(ms(10))
    assert net.node(1).groups.group_view(2).version == version_before


def test_site_crash_drops_its_processes_everywhere():
    net = bootstrap(node_count=5)
    net.node(3).groups.join_group(9, process_id=0)
    net.node(3).groups.join_group(9, process_id=1)
    net.node(4).groups.join_group(9, process_id=2)
    net.run_for(ms(10))
    net.node(3).crash()
    net.run_for(ms(100))
    for node_id, processes in group_views(net, 9).items():
        assert processes == {(4, 2)}, f"node {node_id}: {processes}"


def test_site_leave_drops_its_processes():
    net = bootstrap()
    net.node(2).groups.join_group(5, process_id=0)
    net.node(1).groups.join_group(5, process_id=0)
    net.run_for(ms(10))
    net.node(2).leave()
    net.run_for(ms(200))
    for node_id, node in net.nodes.items():
        if node.is_member:
            assert node.groups.group_view(5).processes == {(1, 0)}


def test_group_views_consistent_under_inconsistent_announcement():
    """An inconsistent omission on the announcement, with the announcing
    site crashing: the eager diffusion still spreads it (or nobody has it
    after the site-level cleanup) — never a split view."""
    injector = FaultInjector()
    injector.fault_on_frame(
        lambda f: f.mid.mtype is MessageType.GROUP,
        FaultKind.INCONSISTENT_OMISSION,
        accepting=[2],
        crash_sender=True,
    )
    net = bootstrap(node_count=5, injector=injector)
    net.node(0).groups.join_group(6, process_id=0)
    net.run_for(ms(200))
    views = {
        node_id: node.groups.group_view(6).processes
        for node_id, node in net.nodes.items()
        if not node.crashed and node.is_member
    }
    reference = next(iter(views.values()))
    assert all(view == reference for view in views.values()), views


def test_change_notifications_fire():
    net = bootstrap()
    changes = []
    net.node(1).groups.on_group_change(changes.append)
    net.node(0).groups.join_group(4, process_id=0)
    net.run_for(ms(10))
    assert changes
    assert changes[-1].group_id == 4
    assert (0, 0) in changes[-1].processes


def test_known_groups():
    net = bootstrap()
    net.node(0).groups.join_group(1, process_id=0)
    net.node(0).groups.join_group(3, process_id=0)
    net.run_for(ms(10))
    assert net.node(2).groups.known_groups == [1, 3]


def test_non_member_cannot_announce():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    with pytest.raises(ConfigurationError):
        net.node(0).groups.join_group(1, process_id=0)


def test_id_validation():
    net = bootstrap()
    with pytest.raises(ConfigurationError):
        net.node(0).groups.join_group(256, process_id=0)
    with pytest.raises(ConfigurationError):
        net.node(0).groups.join_group(1, process_id=256)
    with pytest.raises(ConfigurationError):
        net.node(0).groups.group_view(-1)


def test_version_increases_monotonically():
    net = bootstrap()
    net.node(0).groups.join_group(2, process_id=0)
    net.run_for(ms(10))
    v1 = net.node(1).groups.group_view(2).version
    net.node(0).groups.leave_group(2, process_id=0)
    net.run_for(ms(10))
    v2 = net.node(1).groups.group_view(2).version
    assert v2 > v1
