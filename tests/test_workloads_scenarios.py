"""Unit tests for scenario scripting helpers."""

import pytest

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import ms
from repro.workloads.scenarios import (
    bootstrap_network,
    detection_latencies,
    first_change_with_failed,
    schedule_crash,
    schedule_join,
    schedule_leave,
)

CONFIG = CanelyConfig(capacity=16, tm=ms(50), tjoin_wait=ms(150))


def test_bootstrap_network_converges():
    net = CanelyNetwork(node_count=4, config=CONFIG)
    bootstrap_network(net)
    assert sorted(net.agreed_view()) == [0, 1, 2, 3]


def test_schedule_crash():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    bootstrap_network(net)
    at = net.sim.now + ms(20)
    schedule_crash(net, 2, at)
    net.run_for(ms(200))
    assert net.node(2).crashed
    assert sorted(net.agreed_view()) == [0, 1]


def test_schedule_join_and_leave():
    net = CanelyNetwork(node_count=4, config=CONFIG)
    for node_id in range(3):
        net.node(node_id).join()
    net.run_for(ms(400))
    schedule_join(net, 3, net.sim.now + ms(10))
    schedule_leave(net, 0, net.sim.now + ms(10))
    net.run_for(ms(300))
    assert sorted(net.agreed_view()) == [1, 2, 3]


def test_first_change_with_failed():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    bootstrap_network(net)
    crash_at = net.sim.now
    net.node(1).crash()
    net.run_for(ms(200))
    notified = first_change_with_failed(net, 1, after=crash_at)
    assert notified is not None
    assert notified >= crash_at


def test_first_change_with_failed_none_when_absent():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    bootstrap_network(net)
    assert first_change_with_failed(net, 2) is None


def test_detection_latencies():
    net = CanelyNetwork(node_count=4, config=CONFIG)
    bootstrap_network(net)
    crash_time = net.sim.now
    net.node(3).crash()
    net.run_for(ms(200))
    latencies = detection_latencies(net, {3: crash_time})
    assert latencies[3] is not None
    assert 0 < latencies[3] <= ms(30)


def test_bootstrap_failure_raises():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    net.node(0).crash()  # one node can never join
    with pytest.raises(AssertionError):
        bootstrap_network(net)
