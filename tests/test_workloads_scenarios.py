"""Unit tests for scenario scripting helpers.

The construction helpers (``bootstrap_network``, ``schedule_*``) are
deprecated wrappers around :class:`~repro.workloads.builder.ScenarioBuilder`;
the tests here pin both that they still work and that they warn. The
trace-query helpers (``first_change_with_failed``, ``detection_latencies``)
are not deprecated and are exercised through the builder API.
"""

import pytest

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.errors import ReproError, ScenarioError
from repro.sim.clock import ms
from repro.workloads.scenarios import (
    bootstrap_network,
    detection_latencies,
    first_change_with_failed,
    schedule_crash,
    schedule_join,
    schedule_leave,
)

CONFIG = CanelyConfig(capacity=16, tm=ms(50), tjoin_wait=ms(150))


# -- deprecated wrappers: still work, and warn -------------------------------------


def test_bootstrap_network_converges_and_warns():
    net = CanelyNetwork(node_count=4, config=CONFIG)
    with pytest.warns(DeprecationWarning, match="network.scenario"):
        bootstrap_network(net)
    assert sorted(net.agreed_view()) == [0, 1, 2, 3]


def test_schedule_crash_warns_and_schedules():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    net.scenario().bootstrap()
    at = net.sim.now + ms(20)
    with pytest.warns(DeprecationWarning, match="scenario\\(\\).crash"):
        schedule_crash(net, 2, at)
    net.run_for(ms(200))
    assert net.node(2).crashed
    assert sorted(net.agreed_view()) == [0, 1]


def test_schedule_join_and_leave_warn_and_schedule():
    net = CanelyNetwork(node_count=4, config=CONFIG)
    for node_id in range(3):
        net.node(node_id).join()
    net.run_for(ms(400))
    with pytest.warns(DeprecationWarning, match="scenario\\(\\).join"):
        schedule_join(net, 3, net.sim.now + ms(10))
    with pytest.warns(DeprecationWarning, match="scenario\\(\\).leave"):
        schedule_leave(net, 0, net.sim.now + ms(10))
    net.run_for(ms(300))
    assert sorted(net.agreed_view()) == [1, 2, 3]


def test_bootstrap_failure_raises_typed_error():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    net.node(0).crash()  # one node can never join
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ScenarioError) as excinfo:
            bootstrap_network(net)
    assert "did not converge" in str(excinfo.value)
    # Campaign workers classify on the type, so it must be a ReproError —
    # not a bare AssertionError matched by message.
    assert isinstance(excinfo.value, ReproError)


def test_bootstrap_failure_message_is_reproducible():
    """Non-convergence must name the settle-cycle count and the seed, so a
    campaign/check failure is reproducible from the message alone."""
    net = CanelyNetwork(node_count=3, config=CONFIG)
    net.node(1).crash()
    with pytest.raises(ScenarioError) as excinfo:
        net.scenario(seed=1234).bootstrap(settle_cycles=3)
    message = str(excinfo.value)
    assert "settle_cycles=3" in message
    assert "seed=1234" in message


# -- trace-query helpers (not deprecated) ----------------------------------------


def test_first_change_with_failed():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    net.scenario().bootstrap()
    crash_at = net.sim.now
    net.node(1).crash()
    net.run_for(ms(200))
    notified = first_change_with_failed(net, 1, after=crash_at)
    assert notified is not None
    assert notified >= crash_at


def test_first_change_with_failed_none_when_absent():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    net.scenario().bootstrap()
    assert first_change_with_failed(net, 2) is None


def test_detection_latencies():
    net = CanelyNetwork(node_count=4, config=CONFIG)
    net.scenario().bootstrap()
    crash_time = net.sim.now
    net.node(3).crash()
    net.run_for(ms(200))
    latencies = detection_latencies(net, {3: crash_time})
    assert latencies[3] is not None
    assert 0 < latencies[3] <= ms(30)


def test_detection_latencies_multiple_crashes_single_pass():
    net = CanelyNetwork(node_count=5, config=CONFIG)
    net.scenario().bootstrap()
    crash_times = {}
    for victim in (1, 4):
        crash_times[victim] = net.sim.now
        net.node(victim).crash()
        net.run_for(ms(60))
    net.run_for(ms(200))
    latencies = detection_latencies(net, crash_times)
    # The one-pass computation must agree with the per-node trace scans.
    for victim, crashed_at in crash_times.items():
        notified_at = first_change_with_failed(net, victim, after=crashed_at)
        assert latencies[victim] == notified_at - crashed_at


def test_detection_latencies_ignores_changes_before_crash():
    net = CanelyNetwork(node_count=4, config=CONFIG)
    net.scenario().bootstrap()
    crash_time = net.sim.now
    net.node(2).crash()
    net.run_for(ms(200))
    # A claimed crash far in the future has no matching change record.
    latencies = detection_latencies(net, {2: crash_time, 3: net.sim.now + ms(500)})
    assert latencies[2] is not None
    assert latencies[3] is None
