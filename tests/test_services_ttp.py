"""Unit tests for the miniature TTP network."""

import pytest

from repro.errors import ConfigurationError
from repro.services.ttp import TtpNetwork
from repro.sim.clock import ms, us
from repro.sim.kernel import Simulator


def make(node_count=4, slot_time=ms(1), channels=2):
    sim = Simulator()
    network = TtpNetwork(sim, node_count, slot_time, channels)
    network.start()
    return sim, network


def test_steady_state_no_removals():
    sim, ttp = make()
    sim.run_until(ms(50))
    assert ttp.memberships_agree()
    assert ttp.agreed_membership() == {0, 1, 2, 3}
    assert ttp.stats.rounds_completed >= 12


def test_frames_every_slot():
    sim, ttp = make()
    sim.run_until(ms(40))  # 10 rounds of 4 slots
    assert ttp.stats.frames_sent == 40


def test_crash_detected_within_one_round():
    sim, ttp = make()
    sim.run_until(ms(20))
    crash_time = sim.now
    removals = []
    ttp.nodes[0].on_membership_change(
        lambda removed, view: removals.append((sim.now, removed))
    )
    ttp.nodes[2].crash()
    sim.run_until(ms(40))
    assert ttp.agreed_membership() == {0, 1, 3}
    detected_at = next(at for at, removed in removals if removed == 2)
    assert detected_at - crash_time <= ttp.round_time + ttp.slot_time


def test_removal_consistent_at_all_nodes():
    sim, ttp = make(node_count=6)
    sim.run_until(ms(20))
    ttp.nodes[4].crash()
    sim.run_until(ms(40))
    assert ttp.memberships_agree()


def test_single_channel_omission_masked():
    """TTP's omission handling: replication masks one channel's loss."""
    sim, ttp = make()
    ttp.script_omission(round_index=3, slot=1, channels_hit=1)
    sim.run_until(ms(50))
    assert ttp.agreed_membership() == {0, 1, 2, 3}
    assert ttp.stats.frames_lost == 0


def test_double_channel_omission_expels_sender():
    sim, ttp = make()
    ttp.script_omission(round_index=3, slot=1, channels_hit=2)
    sim.run_until(ms(50))
    assert 1 not in ttp.agreed_membership()
    assert ttp.stats.frames_lost == 1
    # The expelled node observed its own expulsion and went passive.
    assert ttp.nodes[1].passive
    assert not ttp.nodes[1].crashed


def test_passive_node_stops_transmitting():
    sim, ttp = make()
    ttp.script_omission(round_index=2, slot=0, channels_hit=2)
    sim.run_until(ms(12))  # through round 2
    frames_at_expulsion = ttp.stats.frames_sent
    sim.run_until(ms(16))  # one more round: only 3 senders now
    assert ttp.stats.frames_sent - frames_at_expulsion == 3


def test_single_channel_cluster_is_fragile():
    """Without replication, one omission falsely expels a healthy node —
    the fragility TTP's dual channels exist to mask."""
    sim, ttp = make(channels=1)
    ttp.script_omission(round_index=2, slot=3, channels_hit=1)
    sim.run_until(ms(30))
    assert 3 not in ttp.agreed_membership()


def test_bandwidth_is_constant():
    _, ttp = make(slot_time=ms(1))
    assert ttp.bandwidth_frames_per_second() == 1000.0


def test_config_validation():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        TtpNetwork(sim, 1, ms(1))
    with pytest.raises(ConfigurationError):
        TtpNetwork(sim, 4, 0)
    with pytest.raises(ConfigurationError):
        TtpNetwork(sim, 4, ms(1), channels=0)


def test_round_time():
    _, ttp = make(node_count=8, slot_time=us(500))
    assert ttp.round_time == ms(4)
