"""Unit tests for acceptance filters."""

import pytest

from repro.can.filters import AcceptanceFilter, FilterBank
from repro.can.identifiers import MessageId, MessageType
from repro.errors import ConfigurationError


def test_exact_filter():
    mid = MessageId(MessageType.DATA, node=3, ref=7)
    exact = AcceptanceFilter.exact(mid)
    assert exact.accepts(mid.encode())
    assert not exact.accepts(MessageId(MessageType.DATA, node=3, ref=8).encode())


def test_type_filter():
    by_type = AcceptanceFilter.for_type(MessageType.RHA)
    assert by_type.accepts(MessageId(MessageType.RHA, node=9, ref=42).encode())
    assert not by_type.accepts(MessageId(MessageType.FDA, node=9).encode())


def test_sender_filter():
    by_sender = AcceptanceFilter.for_sender(5)
    assert by_sender.accepts(MessageId(MessageType.DATA, node=5, ref=1).encode())
    assert by_sender.accepts(MessageId(MessageType.ELS, node=5).encode())
    assert not by_sender.accepts(MessageId(MessageType.DATA, node=6).encode())


def test_dont_care_mask():
    accept_all = AcceptanceFilter(code=0, mask=0)
    assert accept_all.accepts(0)
    assert accept_all.accepts((1 << 29) - 1)


def test_filter_validation():
    with pytest.raises(ConfigurationError):
        AcceptanceFilter(code=1 << 29, mask=0)
    with pytest.raises(ConfigurationError):
        AcceptanceFilter(code=0, mask=1 << 29)
    with pytest.raises(ConfigurationError):
        AcceptanceFilter.for_sender(256)


def test_empty_bank_accepts_everything():
    bank = FilterBank()
    assert bank.accepts(123)
    assert bank.accepts_mid(MessageId(MessageType.DATA, node=1))


def test_bank_any_match_semantics():
    bank = FilterBank(
        [
            AcceptanceFilter.for_type(MessageType.DATA),
            AcceptanceFilter.for_sender(2),
        ]
    )
    assert bank.accepts_mid(MessageId(MessageType.DATA, node=9))  # by type
    assert bank.accepts_mid(MessageId(MessageType.ELS, node=2))  # by sender
    assert not bank.accepts_mid(MessageId(MessageType.ELS, node=3))


def test_bank_add_and_clear():
    bank = FilterBank()
    bank.add(AcceptanceFilter.exact(MessageId(MessageType.DATA, node=1)))
    assert len(bank) == 1
    assert not bank.accepts_mid(MessageId(MessageType.DATA, node=2))
    bank.clear()
    assert bank.accepts_mid(MessageId(MessageType.DATA, node=2))
