"""Online invariant monitors: unit tests plus end-to-end integration.

The integration tests run a real CANELy network with the standard monitor
set attached as live trace sinks, then inject violations and check the
monitors catch them *with* the offending trace slice attached.
"""

import pytest

from repro.analysis.latency import latency_bounds
from repro.core.stack import CanelyNetwork
from repro.obs.monitors import (
    DetectionLatencyMonitor,
    DuplicateFailureSignMonitor,
    InvariantViolation,
    ViewAgreementMonitor,
    standard_monitors,
)
from repro.sim.clock import ms
from repro.sim.trace import TraceRecorder


# -- unit: duplicate failure-sign --------------------------------------------------


def test_single_delivery_passes():
    trace = TraceRecorder()
    DuplicateFailureSignMonitor().attach(trace)
    trace.record(10, "fda.nty", node=1, failed=5)
    trace.record(20, "fda.nty", node=2, failed=5)  # other receiver: fine


def test_duplicate_delivery_fails_with_slice():
    trace = TraceRecorder()
    DuplicateFailureSignMonitor().attach(trace)
    trace.record(10, "fda.nty", node=1, failed=5)
    with pytest.raises(InvariantViolation) as excinfo:
        trace.record(20, "fda.nty", node=1, failed=5)
    violation = excinfo.value
    assert violation.monitor == "no-duplicate-failure-sign"
    assert [r.time for r in violation.records] == [10, 20]
    assert "offending trace slice" in str(violation)


def test_reset_allows_redelivery():
    trace = TraceRecorder()
    DuplicateFailureSignMonitor().attach(trace)
    trace.record(10, "fda.nty", node=1, failed=5)
    trace.record(15, "fda.reset", node=1, failed=5)
    trace.record(20, "fda.nty", node=1, failed=5)  # fresh counters: fine


def test_eviction_allows_redelivery():
    trace = TraceRecorder()
    DuplicateFailureSignMonitor().attach(trace)
    trace.record(10, "fda.nty", node=1, failed=5)
    trace.record(15, "fda.evict", node=1, failed=5)
    trace.record(20, "fda.nty", node=1, failed=5)


def test_receiver_reboot_clears_state():
    trace = TraceRecorder()
    DuplicateFailureSignMonitor().attach(trace)
    trace.record(10, "fda.nty", node=1, failed=5)
    trace.record(15, "node.recover", node=1)
    trace.record(20, "fda.nty", node=1, failed=5)


def test_detach_stops_checking():
    trace = TraceRecorder()
    monitor = DuplicateFailureSignMonitor().attach(trace)
    trace.record(10, "fda.nty", node=1, failed=5)
    monitor.detach()
    trace.record(20, "fda.nty", node=1, failed=5)  # no longer watched


# -- unit: view agreement ----------------------------------------------------------


def test_agreeing_views_pass():
    trace = TraceRecorder()
    ViewAgreementMonitor().attach(trace)
    trace.record(10, "msh.view", node=0, members={0, 1}, round_index=3)
    trace.record(11, "msh.view", node=1, members={0, 1}, round_index=3)


def test_divergent_views_fail():
    trace = TraceRecorder()
    ViewAgreementMonitor().attach(trace)
    trace.record(10, "msh.view", node=0, members={0, 1, 2}, round_index=3)
    with pytest.raises(InvariantViolation) as excinfo:
        trace.record(11, "msh.view", node=1, members={0, 1}, round_index=3)
    assert excinfo.value.monitor == "view-agreement"


def test_late_joiner_not_compared():
    """A node absent from the peer's view (not yet a full member) may hold
    a different view without violating agreement."""
    trace = TraceRecorder()
    ViewAgreementMonitor().attach(trace)
    trace.record(10, "msh.view", node=0, members={0, 1}, round_index=3)
    trace.record(11, "msh.view", node=2, members={0, 1, 2}, round_index=3)


def test_rounds_are_independent():
    trace = TraceRecorder()
    ViewAgreementMonitor().attach(trace)
    trace.record(10, "msh.view", node=0, members={0, 1}, round_index=3)
    trace.record(11, "msh.view", node=1, members={0, 1}, round_index=4)


# -- unit: detection latency -------------------------------------------------------


def _member_view(trace, time, members):
    for node in members:
        trace.record(time, "msh.view", node=node, members=set(members),
                     round_index=1)


def test_latency_within_bound_passes_and_feeds_histogram():
    from repro.obs.metrics import MetricsRegistry

    trace = TraceRecorder()
    registry = MetricsRegistry()
    DetectionLatencyMonitor(bound=100, metrics=registry).attach(trace)
    _member_view(trace, 0, [0, 1])
    trace.record(50, "node.crash", node=1)
    trace.record(120, "fda.nty", node=0, failed=1)
    hist = registry.histogram("fd.detection_latency_ticks", node=1)
    assert hist.count == 1 and hist.maximum == 70


def test_latency_beyond_bound_fails():
    trace = TraceRecorder()
    DetectionLatencyMonitor(bound=100).attach(trace)
    _member_view(trace, 0, [0, 1])
    trace.record(50, "node.crash", node=1)
    with pytest.raises(InvariantViolation) as excinfo:
        trace.record(500, "fda.nty", node=0, failed=1)
    assert excinfo.value.monitor == "detection-latency"


def test_non_member_failure_sign_ignored():
    trace = TraceRecorder()
    DetectionLatencyMonitor(bound=100).attach(trace)
    trace.record(50, "node.crash", node=9)  # never in any view
    trace.record(500, "fda.nty", node=0, failed=9)


def test_recovered_node_not_timed():
    trace = TraceRecorder()
    DetectionLatencyMonitor(bound=100).attach(trace)
    _member_view(trace, 0, [0, 1])
    trace.record(50, "node.crash", node=1)
    trace.record(60, "node.recover", node=1)
    trace.record(500, "fda.nty", node=0, failed=1)


# -- integration: monitors over a real network run ---------------------------------


def _observed_net():
    net = CanelyNetwork(node_count=5)
    monitors = standard_monitors(
        net.sim.trace,
        detection_bound=latency_bounds(net.config).notification,
        metrics=net.sim.metrics,
    )
    return net, monitors


def test_clean_crash_run_satisfies_all_monitors():
    net, monitors = _observed_net()
    net.join_all()
    net.run_for(ms(400))
    net.node(3).crash()
    net.run_for(ms(150))
    assert net.views_agree()
    assert all(monitor.records_seen > 0 for monitor in monitors)
    # The latency monitor actually timed the crash.
    hist = net.sim.metrics.histogram("fd.detection_latency_ticks", node=3)
    assert hist.count >= 1
    assert hist.maximum <= latency_bounds(net.config).notification


def test_injected_duplicate_failure_sign_is_caught_with_slice():
    """Acceptance scenario: corrupt the FDA dedup state mid-run (modelled
    by replaying a failure-sign delivery record) and the monitor must stop
    the run, reporting the records around the violation."""
    net, _monitors = _observed_net()
    net.join_all()
    net.run_for(ms(400))
    net.node(3).crash()
    # Far enough for the failure-sign to arrive, short of the membership
    # cycle boundary that would legitimately retire the FDA counters.
    net.run_for(ms(15))
    first = net.sim.trace.select(category="fda.nty", node=0)[0]
    with pytest.raises(InvariantViolation) as excinfo:
        # Replay the delivery: a second fda.nty for the same (receiver,
        # failed) pair without an intervening reset/evict/reboot.
        net.sim.trace.record(
            net.sim.now, "fda.nty", node=0, failed=first.data["failed"]
        )
    violation = excinfo.value
    assert violation.monitor == "no-duplicate-failure-sign"
    assert violation.records, "violation must carry the offending slice"
    assert violation.records[-1].category == "fda.nty"
    assert f"node {first.data['failed']}" in str(violation)


def test_scenario_runner_attaches_monitors():
    from repro.workloads.script import ScenarioSpec, run_scenario

    spec = ScenarioSpec.from_dict(
        {
            "nodes": 4,
            "events": [{"at_ms": 100, "action": "crash", "node": 2}],
            "duration_ms": 400,
        }
    )
    report = run_scenario(spec, monitors=True)  # must not raise
    assert report.views_agree
