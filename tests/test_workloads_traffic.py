"""Unit tests for traffic generators."""

import random

import pytest

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.errors import ConfigurationError
from repro.sim.clock import ms
from repro.workloads.traffic import PeriodicSource, SporadicSource, TrafficSet

CONFIG = CanelyConfig(capacity=16, tm=ms(50), tjoin_wait=ms(150))


def bootstrap(node_count=3):
    net = CanelyNetwork(node_count=node_count, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    return net


def test_periodic_source_rate():
    net = bootstrap()
    source = PeriodicSource(net.sim, net.node(0), period=ms(10))
    net.run_for(ms(105))
    assert 9 <= source.sent <= 11


def test_periodic_source_stop():
    net = bootstrap()
    source = PeriodicSource(net.sim, net.node(0), period=ms(10))
    net.run_for(ms(50))
    source.stop()
    sent = source.sent
    net.run_for(ms(50))
    assert source.sent == sent


def test_periodic_source_halts_on_crash():
    net = bootstrap()
    source = PeriodicSource(net.sim, net.node(0), period=ms(10))
    net.run_for(ms(30))
    net.node(0).crash()
    net.run_for(ms(50))
    assert source.sent <= 4


def test_periodic_offset_delays_start():
    net = bootstrap()
    source = PeriodicSource(net.sim, net.node(0), period=ms(10), offset=ms(40))
    net.run_for(ms(45))
    assert source.sent == 1


def test_periodic_validation():
    net = bootstrap()
    with pytest.raises(ConfigurationError):
        PeriodicSource(net.sim, net.node(0), period=0)
    with pytest.raises(ConfigurationError):
        PeriodicSource(net.sim, net.node(0), period=ms(1), payload_size=9)


def test_periodic_traffic_characterization():
    net = bootstrap()
    source = PeriodicSource(net.sim, net.node(1), period=ms(7))
    traffic = source.traffic()
    assert traffic.node_id == 1
    assert traffic.min_period == ms(7)


def test_sporadic_source_sends():
    net = bootstrap()
    source = SporadicSource(
        net.sim, net.node(0), mean_interarrival=ms(5), rng=random.Random(1)
    )
    net.run_for(ms(200))
    assert source.sent > 10


def test_sporadic_characterization_has_no_period():
    net = bootstrap()
    source = SporadicSource(
        net.sim, net.node(0), mean_interarrival=ms(5), rng=random.Random(1)
    )
    assert source.traffic().min_period is None


def test_sporadic_validation():
    net = bootstrap()
    with pytest.raises(ConfigurationError):
        SporadicSource(net.sim, net.node(0), mean_interarrival=0, rng=random.Random(1))


def test_traffic_set_aggregates():
    net = bootstrap()
    bundle = TrafficSet()
    bundle.add(PeriodicSource(net.sim, net.node(0), period=ms(10)))
    bundle.add(
        SporadicSource(net.sim, net.node(1), mean_interarrival=ms(20), rng=random.Random(2))
    )
    net.run_for(ms(100))
    assert bundle.total_sent > 0
    assert len(bundle.characterization()) == 2
    bundle.stop_all()
    total = bundle.total_sent
    net.run_for(ms(100))
    assert bundle.total_sent == total
