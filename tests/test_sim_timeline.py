"""Unit tests for trace timelines and summaries."""

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import ms
from repro.sim.timeline import bandwidth_profile, summarize, timeline
from repro.sim.trace import TraceRecorder

CONFIG = CanelyConfig(capacity=16, tm=ms(50), tjoin_wait=ms(150))


def run_scenario():
    net = CanelyNetwork(node_count=4, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    net.node(2).crash()
    net.run_for(ms(150))
    return net


def test_summary_counts():
    net = run_scenario()
    summary = summarize(net.sim.trace)
    assert summary.physical_frames > 0
    assert summary.crashes == [2]
    assert summary.view_changes > 0
    assert summary.change_notifications > 0
    assert "ELS" in summary.frames_by_type
    assert "FDA" in summary.frames_by_type
    assert summary.duration <= net.sim.now


def test_summary_empty_trace():
    summary = summarize(TraceRecorder())
    assert summary.physical_frames == 0
    assert summary.crashes == []


def test_timeline_chronological_and_formatted():
    net = run_scenario()
    lines = timeline(net.sim.trace)
    assert lines
    assert any("CRASHED" in line for line in lines)
    assert any("FDA" in line for line in lines)


def test_timeline_window():
    net = run_scenario()
    lines = timeline(net.sim.trace, start=ms(400), end=ms(420))
    assert all("ms" in line for line in lines)
    assert any("CRASHED" in line for line in lines)
    # Nothing from the bootstrap window leaks in.
    assert not any("JOIN" in line for line in lines)


def test_timeline_limit():
    net = run_scenario()
    assert len(timeline(net.sim.trace, limit=5)) == 5


def test_timeline_views_suppressed_by_default():
    net = run_scenario()
    assert not any("view ->" in line for line in timeline(net.sim.trace))
    assert any(
        "view ->" in line for line in timeline(net.sim.trace, include_views=True)
    )


def test_bandwidth_profile_covers_run():
    net = run_scenario()
    profile = bandwidth_profile(net.sim.trace, window=ms(100))
    assert profile
    starts = [start for start, _ in profile]
    assert starts == sorted(starts)
    assert sum(bits for _, bits in profile) > 0


def test_bandwidth_profile_empty():
    assert bandwidth_profile(TraceRecorder(), window=ms(10)) == []


def test_view_history_collapses_repeats():
    from repro.sim.timeline import view_history

    net = run_scenario()
    history = view_history(net.sim.trace, node=0)
    assert history
    # Consecutive entries always differ.
    for (_, a), (_, b) in zip(history, history[1:]):
        assert a != b
    # The story: empty/bootstrap -> full view -> node 2 removed.
    assert history[-1][1] == [0, 1, 3]
    assert any(members == [0, 1, 2, 3] for _, members in history)


def test_view_histories_are_mutually_consistent():
    """Every pair of correct nodes sees the same sequence of distinct
    views (ignoring timing) — the view-synchrony flavoured invariant."""
    from repro.sim.timeline import view_history

    net = run_scenario()
    sequences = {
        node: [members for _, members in view_history(net.sim.trace, node)]
        for node in (0, 1, 3)
    }
    reference = sequences[0]
    for node, sequence in sequences.items():
        assert sequence == reference, node


def test_timeline_describes_inaccessibility_and_recovery():
    from repro.sim.timeline import timeline

    net = CanelyNetwork(node_count=2, config=CONFIG)
    net.join_all()
    net.run_for(ms(300))
    net.bus.inject_inaccessibility(500)
    net.node(1).crash()
    net.run_for(ms(100))
    net.node(1).recover()
    net.run_for(ms(10))
    text = "\n".join(timeline(net.sim.trace))
    assert "bus inaccessible for 500 bit-times" in text
    assert "node 1 recovered" in text


def test_timeline_unknown_category_fallback():
    from repro.sim.timeline import timeline

    trace = TraceRecorder()
    trace.record(5, "custom.event", node=2, info="x")
    lines = timeline(trace)
    assert len(lines) == 1
    assert "custom.event" in lines[0]
