"""Unit tests for the CANopen heartbeat (producer-consumer) variant."""

import pytest

from repro.errors import ConfigurationError
from repro.services.cal_nm import CalHeartbeat
from repro.sim.clock import ms


def wire(raw_bus, node_count=4, producer_time=None, consumer_time=None):
    producer_time = producer_time or ms(20)
    consumer_time = consumer_time or ms(50)
    net = raw_bus(node_count)
    services = {}
    for node_id, layer in net.layers.items():
        watched = [n for n in range(node_count) if n != node_id]
        services[node_id] = CalHeartbeat(
            layer,
            net.timers[node_id],
            net.sim,
            producer_time=producer_time,
            consumer_time=consumer_time,
            watched=watched,
        )
        services[node_id].start()
    return net, services


def test_steady_state_no_detection(raw_bus):
    net, services = wire(raw_bus)
    net.sim.run_until(ms(500))
    assert all(not s.detected for s in services.values())
    assert all(s.heartbeats_sent >= 20 for s in services.values())


def test_crash_detected_by_all_consumers(raw_bus):
    net, services = wire(raw_bus)
    net.sim.run_until(ms(200))
    net.controllers[2].crash()
    crash_time = net.sim.now
    net.sim.run_until(ms(500))
    for node_id in (0, 1, 3):
        assert set(services[node_id].detected) == {2}
        latency = services[node_id].detected[2] - crash_time
        assert latency <= services[node_id].consumer_time + ms(1)


def test_consumers_time_out_independently_no_agreement(raw_bus):
    """The paper's criticism: no consistency mechanism — each consumer
    detects on its own local timer, so notification times differ."""
    net, services = wire(raw_bus)
    net.sim.run_until(ms(200))
    net.controllers[3].crash()
    net.sim.run_until(ms(500))
    times = {services[n].detected[3] for n in (0, 1, 2)}
    # The detections happen, but nothing synchronizes them: depending on
    # each consumer's re-arm phase the instants may differ (they coincide
    # here only if the heartbeats happened to arrive in lockstep).
    assert all(t > 0 for t in times)


def test_unwatched_producer_not_detected(raw_bus):
    net = raw_bus(3)
    service = CalHeartbeat(
        net.layers[0],
        net.timers[0],
        net.sim,
        producer_time=ms(20),
        consumer_time=ms(50),
        watched=[1],  # node 2 is not watched
    )
    service.start()
    CalHeartbeat(
        net.layers[1], net.timers[1], net.sim, ms(20), ms(50)
    ).start()
    net.sim.run_until(ms(400))
    # Node 2 never produced a heartbeat, but it is not watched either.
    assert 2 not in service.detected


def test_recovered_producer_clears_detection(raw_bus):
    net, services = wire(raw_bus)
    net.sim.run_until(ms(200))
    net.controllers[1].crash()
    net.sim.run_until(ms(400))
    assert 1 in services[0].detected
    net.controllers[1].crashed = False
    net.controllers[1].tec = 0
    net.sim.run_until(ms(600))
    assert 1 not in services[0].detected  # heartbeats resumed


def test_config_validation(raw_bus):
    net = raw_bus(2)
    with pytest.raises(ConfigurationError):
        CalHeartbeat(net.layers[0], net.timers[0], net.sim, 0, ms(50))
    with pytest.raises(ConfigurationError):
        CalHeartbeat(net.layers[0], net.timers[0], net.sim, ms(50), ms(50))
