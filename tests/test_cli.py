"""Smoke tests for the ``python -m repro`` command-line front end."""

import pytest

from repro.__main__ import main


def test_demo(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "crashed" in out
    assert "agreement: ok" in out


def test_fig1(capsys):
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "Membership service" in out


def test_fig10_defaults(capsys):
    assert main(["fig10"]) == 0
    out = capsys.readouterr().out
    assert "multiple join/leave" in out
    assert "Tm=30ms" in out


def test_fig10_custom_population(capsys):
    assert main(["fig10", "--nodes", "16", "--lifesigns", "4"]) == 0
    out = capsys.readouterr().out
    assert "n=16" in out


def test_fig11(capsys):
    assert main(["fig11"]) == 0
    out = capsys.readouterr().out
    assert "2880" in out


def test_inaccessibility(capsys):
    assert main(["inaccessibility"]) == 0
    out = capsys.readouterr().out
    assert "14 - 2880" in out


def test_bounds(capsys):
    assert main(["bounds", "--thb", "20", "--tm", "100"]) == 0
    out = capsys.readouterr().out
    assert "consistent view update" in out


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_demo_with_timeline(capsys):
    assert main(["demo", "--timeline"]) == 0
    out = capsys.readouterr().out
    assert "timeline around the crash" in out
    assert "FDA" in out
    assert "summary:" in out
