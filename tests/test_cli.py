"""Smoke tests for the ``python -m repro`` command-line front end."""

import json

import pytest

from repro.__main__ import main


def test_demo(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "crashed" in out
    assert "agreement: ok" in out


def test_fig1(capsys):
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "Membership service" in out


def test_fig10_defaults(capsys):
    assert main(["fig10"]) == 0
    out = capsys.readouterr().out
    assert "multiple join/leave" in out
    assert "Tm=30ms" in out


def test_fig10_custom_population(capsys):
    assert main(["fig10", "--nodes", "16", "--lifesigns", "4"]) == 0
    out = capsys.readouterr().out
    assert "n=16" in out


def test_fig11(capsys):
    assert main(["fig11"]) == 0
    out = capsys.readouterr().out
    assert "2880" in out


def test_inaccessibility(capsys):
    assert main(["inaccessibility"]) == 0
    out = capsys.readouterr().out
    assert "14 - 2880" in out


def test_bounds(capsys):
    assert main(["bounds", "--thb", "20", "--tm", "100"]) == 0
    out = capsys.readouterr().out
    assert "consistent view update" in out


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_demo_with_timeline(capsys):
    assert main(["demo", "--timeline"]) == 0
    out = capsys.readouterr().out
    assert "timeline around the crash" in out
    assert "FDA" in out
    assert "summary:" in out


SCENARIO = """{
  "nodes": 4,
  "events": [{"at_ms": 100, "action": "crash", "node": 2}],
  "duration_ms": 400
}"""


@pytest.fixture
def scenario_file(tmp_path):
    path = tmp_path / "scenario.json"
    path.write_text(SCENARIO)
    return str(path)


def test_trace_summary_table(capsys, scenario_file):
    assert main(["trace", "--scenario", scenario_file]) == 0
    out = capsys.readouterr().out
    assert "Trace:" in out
    assert "bus.tx" in out


def test_trace_category_filter(capsys, scenario_file):
    assert main(
        ["trace", "--scenario", scenario_file, "--category", "fda.nty",
         "--limit", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "matching records" in out
    assert "'category': 'fda.nty'" in out


def test_trace_export_jsonl(capsys, scenario_file, tmp_path):
    import json

    target = tmp_path / "out.jsonl"
    assert main(
        ["trace", "--scenario", scenario_file, "--category", "node.crash",
         "--export", str(target)]
    ) == 0
    lines = [json.loads(line) for line in target.read_text().splitlines()]
    assert [entry["category"] for entry in lines] == ["node.crash"]
    assert lines[0]["node"] == 2


def test_metrics_report(capsys, scenario_file):
    assert main(["metrics", "--scenario", scenario_file]) == 0
    out = capsys.readouterr().out
    assert "fd.detections" in out
    assert "msh.views_installed" in out
    assert "fd.detection_latency_ticks{node=2}" in out


def test_run_with_monitors(capsys, scenario_file):
    assert main(["run", scenario_file, "--monitors"]) == 0
    out = capsys.readouterr().out
    assert '"views_agree": true' in out


CAMPAIGN_ARGS = [
    "campaign", "--scenarios", "2", "--seed", "3",
    "--node-min", "4", "--node-max", "5",
    "--crash-min", "1", "--crash-max", "1",
]


def test_campaign_summary_table(capsys):
    assert main(CAMPAIGN_ARGS + ["--workers", "0"]) == 0
    out = capsys.readouterr().out
    assert "completed ok" in out
    assert "analytic bound" in out


def test_campaign_verbose_json_and_report(capsys, tmp_path):
    import json

    report_path = tmp_path / "report.json"
    assert main(
        CAMPAIGN_ARGS
        + ["--workers", "0", "--verbose", "--json", "--report", str(report_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "scenario   0" in out and "scenario   1" in out
    report = json.loads(report_path.read_text())
    assert report["success"] is True
    assert report["verdicts"]["ok"] == 2


def test_campaign_checkpoint_resume(capsys, tmp_path):
    checkpoint = str(tmp_path / "campaign.jsonl")
    assert main(CAMPAIGN_ARGS + ["--workers", "0", "--checkpoint", checkpoint]) == 0
    capsys.readouterr()
    # Resuming a finished campaign runs nothing new but reports all of it.
    assert main(
        CAMPAIGN_ARGS
        + ["--workers", "0", "--checkpoint", checkpoint, "--resume", "--verbose"]
    ) == 0
    out = capsys.readouterr().out
    assert "scenario   0" not in out  # nothing reran
    assert "completed ok" in out


# -- repro check --------------------------------------------------------------------


def test_check_small_sweep_all_ok(capsys):
    assert main(
        ["check", "--depth", "1", "--nodes", "4", "--members", "3",
         "--workers", "0"]
    ) == 0
    out = capsys.readouterr().out
    assert "every invariant held on every schedule" in out
    assert "ok=" in out


def test_check_selftest_and_replay(capsys, tmp_path):
    artifact = str(tmp_path / "cex.jsonl")
    assert main(
        ["check", "--selftest", "--mutation", "fda-duplicate-delivery",
         "--artifact", artifact]
    ) == 0
    out = capsys.readouterr().out
    assert "selftest [fda-duplicate-delivery]: PASS" in out
    assert "replay bit-for-bit: ok" in out
    # The artifact records the planted mutation; --replay re-plants it and
    # must reproduce the violating trace bit-for-bit.
    assert main(["check", "--replay", artifact]) == 0
    out = capsys.readouterr().out
    assert "re-planting recorded mutation [fda-duplicate-delivery]" in out
    assert "replay ok" in out
    assert "bit-for-bit" in out


def test_check_replay_mismatch_fails(capsys, tmp_path):
    """Stripping the mutation key from the header leaves an artifact clean
    code cannot reproduce: replay must fail, not shrug."""
    import json

    artifact = tmp_path / "cex.jsonl"
    assert main(
        ["check", "--selftest", "--mutation", "fda-duplicate-delivery",
         "--artifact", str(artifact)]
    ) == 0
    capsys.readouterr()
    lines = artifact.read_text().splitlines()
    header = json.loads(lines[0])
    del header["mutation"]
    lines[0] = json.dumps(header)
    artifact.write_text("\n".join(lines) + "\n")
    assert main(["check", "--replay", str(artifact)]) == 1
    out = capsys.readouterr().out
    assert "replay FAILED" in out
    assert "did not reproduce" in out


def test_trace_combined_category_node_and_window_filters(capsys, scenario_file, tmp_path):
    """Regression: --category, --node and the --start-ms/--end-ms window
    must all apply in a single invocation."""
    import json

    target = tmp_path / "window.jsonl"
    assert main(
        ["trace", "--scenario", scenario_file, "--category", "bus.deliver",
         "--node", "0", "--start-ms", "150", "--end-ms", "250",
         "--export", str(target)]
    ) == 0
    lines = [json.loads(line) for line in target.read_text().splitlines()]
    assert lines, "the post-bootstrap window carries traffic to node 0"
    for entry in lines:
        assert entry["category"] == "bus.deliver"
        assert entry["node"] == 0
        assert 150_000_000 <= entry["time"] <= 250_000_000
    # The same filters without the window match strictly more records.
    unwindowed = tmp_path / "all.jsonl"
    assert main(
        ["trace", "--scenario", scenario_file, "--category", "bus.deliver",
         "--node", "0", "--export", str(unwindowed)]
    ) == 0
    assert len(unwindowed.read_text().splitlines()) > len(lines)


def test_trace_window_alone_prints_matches(capsys, scenario_file):
    assert main(
        ["trace", "--scenario", scenario_file, "--start-ms", "99",
         "--end-ms", "101", "--limit", "3"]
    ) == 0
    out = capsys.readouterr().out
    assert "matching records" in out
    assert "'category': 'node.crash'" in out or "node.crash" in out


# -- repro spans --------------------------------------------------------------------


SPANS_ARGS = ["spans", "--nodes", "4", "--seed", "0", "--crash", "2"]


def test_spans_summary_table(capsys):
    assert main(SPANS_ARGS) == 0
    out = capsys.readouterr().out
    assert "Spans:" in out
    assert "fd.surveillance" in out
    assert "fda.nty" in out
    assert "p99<=" in out


def test_spans_critical_path(capsys):
    assert main(SPANS_ARGS + ["--critical-path"]) == 0
    out = capsys.readouterr().out
    assert "detection of node 2" in out
    assert "notification of node 2" in out
    assert "view-update of node 2" in out
    assert "surveillance-wait" in out
    assert "cycle-wait" in out


def test_spans_chrome_export_and_validate(capsys, tmp_path):
    import json

    target = tmp_path / "trace.json"
    assert main(
        SPANS_ARGS + ["--chrome", str(target), "--validate", "--flows"]
    ) == 0
    out = capsys.readouterr().out
    assert "chrome trace written" in out
    assert "0 problems" in out
    payload = json.loads(target.read_text())
    assert payload["traceEvents"]


def test_spans_tree(capsys):
    assert main(SPANS_ARGS + ["--tree"]) == 0
    out = capsys.readouterr().out
    assert "fd.surveillance" in out
    assert "fd.detect" in out
    assert "fda.nty" in out


def test_spans_msc(capsys):
    assert main(SPANS_ARGS + ["--msc"]) == 0
    out = capsys.readouterr().out
    assert "crash" in out
    assert "n0" in out and "n3" in out


def test_spans_rejects_bad_crash_node(capsys):
    assert main(["spans", "--nodes", "4", "--crash", "9"]) == 2


def test_metrics_format_json(capsys, scenario_file):
    assert main(
        ["metrics", "--scenario", scenario_file, "--format", "json"]
    ) == 0
    out = capsys.readouterr().out
    snapshot = json.loads(out)
    assert "fd.detections" in snapshot
    # Deterministic key order: the document is sorted.
    assert list(snapshot) == sorted(snapshot)


def test_metrics_format_csv(capsys, scenario_file):
    assert main(
        ["metrics", "--scenario", scenario_file, "--format", "csv"]
    ) == 0
    lines = capsys.readouterr().out.splitlines()
    assert lines[0] == "metric,value"
    names = [line.split(",")[0] for line in lines[1:]]
    assert any(name.startswith("fd.detections") for name in names)
    # Metrics are emitted in sorted order; histogram bucket rows keep
    # their boundary order (so +inf comes last, not first).
    top_level = [name.split(".buckets.")[0] for name in names]
    assert top_level == sorted(top_level)


QOS_ARGS = ["qos", "--scenario", "quiet-baseline", "--quick", "--seed", "0"]


def test_qos_table(capsys):
    assert main(QOS_ARGS) == 0
    out = capsys.readouterr().out
    assert "quiet-baseline" in out
    assert "canely" in out
    assert "det p50 ms" in out


def test_qos_two_backends_with_chart(capsys):
    assert main(QOS_ARGS + ["--backend", "canely", "--backend", "swim",
                            "--chart"]) == 0
    out = capsys.readouterr().out
    assert "swim" in out
    assert "Detection p50" in out


def test_qos_json_and_report_are_identical(capsys, tmp_path):
    target = tmp_path / "qos.json"
    assert main(QOS_ARGS + ["--format", "json",
                            "--report", str(target)]) == 0
    out = capsys.readouterr().out
    document = out.split("report written to")[0].strip()
    assert target.read_text().strip() == document
    report = json.loads(document)
    assert report["scenarios"] == ["quiet-baseline"]
    assert report["backends"] == ["canely"]


def test_qos_csv(capsys):
    assert main(QOS_ARGS + ["--format", "csv"]) == 0
    lines = capsys.readouterr().out.splitlines()
    assert lines[0].startswith("scenario,backend,detection_p50_ms")
    assert lines[1].startswith("quiet-baseline,canely,")


def test_qos_unknown_scenario_exits_2(capsys):
    assert main(["qos", "--scenario", "nonsense", "--quick"]) == 2
    assert "unknown scenario" in capsys.readouterr().out


def test_qos_unknown_backend_exits_2(capsys):
    assert main(["qos", "--backend", "nonsense", "--quick"]) == 2
    assert "unknown backend" in capsys.readouterr().out
