"""Unit tests for bit-level frame decoding."""

import pytest

from repro.can.bitstream import decode_frame_bits, frame_body_bits, stuff
from repro.errors import FrameError


def encode(identifier, data=b"", remote=False, extended=True):
    return stuff(frame_body_bits(identifier, data, remote, extended))


def test_roundtrip_extended_data_frame():
    decoded = decode_frame_bits(encode(0x1234567, b"\x01\xff"))
    assert decoded.identifier == 0x1234567
    assert decoded.data == b"\x01\xff"
    assert not decoded.remote
    assert decoded.extended
    assert decoded.crc_ok


def test_roundtrip_standard_data_frame():
    decoded = decode_frame_bits(encode(0x123, b"abc", extended=False))
    assert decoded.identifier == 0x123
    assert decoded.data == b"abc"
    assert not decoded.extended
    assert decoded.crc_ok


def test_roundtrip_remote_frames():
    for extended in (False, True):
        decoded = decode_frame_bits(encode(0x55, remote=True, extended=extended))
        assert decoded.remote
        assert decoded.data == b""
        assert decoded.crc_ok


def test_corruption_detected_by_crc():
    bits = encode(0x77, b"\x10\x20")
    # Flip a payload bit (avoiding the stuffing structure at the front).
    bits[40] ^= 1
    try:
        decoded = decode_frame_bits(bits)
    except FrameError:
        return  # destuffing structure broke: also a detection
    assert not decoded.crc_ok


def test_truncated_frame_rejected():
    bits = encode(0x77, b"\x10")
    with pytest.raises(FrameError):
        decode_frame_bits(bits[: len(bits) // 2])


def test_missing_sof_rejected():
    bits = encode(0x77)
    bits[0] = 1
    with pytest.raises(FrameError):
        decode_frame_bits(bits)


def test_trailing_bits_rejected():
    bits = encode(0x77) + [0, 0, 0, 0, 0, 0, 0, 0]
    with pytest.raises(FrameError):
        decode_frame_bits(bits)


def test_empty_payload():
    decoded = decode_frame_bits(encode(0x1FFFFFFF, b""))
    assert decoded.data == b""
    assert decoded.identifier == 0x1FFFFFFF
