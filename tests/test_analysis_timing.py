"""Unit tests for the Tindell-Burns response-time analysis."""

import pytest

from repro.analysis.timing import (
    MessageSpec,
    response_time,
    transmission_delay_bound,
    utilization,
)
from repro.errors import ConfigurationError


def spec(identifier, period, dlc=8, jitter=0):
    return MessageSpec(
        identifier=identifier, period=period, dlc=dlc, jitter=jitter, extended=False
    )


def test_single_message_response_is_own_length():
    message = spec(1, period=10_000)
    assert response_time(message, [message]) == message.transmission_bits


def test_blocking_by_lower_priority():
    high = spec(1, period=10_000, dlc=0)
    low = spec(2, period=10_000, dlc=8)
    # High priority still waits out one low-priority frame (non-preemptive).
    response = response_time(high, [high, low])
    assert response == low.transmission_bits + high.transmission_bits


def test_interference_from_higher_priority():
    high = spec(1, period=500, dlc=8)
    low = spec(2, period=10_000, dlc=8)
    response = response_time(low, [high, low])
    assert response > low.transmission_bits  # delayed by high's releases


def test_priority_order_matters():
    a = spec(1, period=1_000, dlc=8)
    b = spec(2, period=1_000, dlc=8)
    c = spec(3, period=1_000, dlc=8)
    traffic = [a, b, c]
    # b suffers a's interference on top of the same blocking; a does not.
    assert response_time(a, traffic) < response_time(b, traffic)


def test_unschedulable_returns_none():
    # Two max-length streams at periods shorter than two frame times.
    a = spec(1, period=200, dlc=8)
    b = spec(2, period=200, dlc=8)
    assert response_time(b, [a, b]) is None


def test_jitter_adds_to_response():
    base = spec(1, period=10_000, dlc=8)
    jittery = spec(1, period=10_000, dlc=8, jitter=100)
    assert response_time(jittery, [jittery]) == response_time(base, [base]) + 100


def test_transmission_delay_bound_is_max_plus_inaccessibility():
    traffic = [spec(i, period=5_000) for i in range(1, 4)]
    worst = max(response_time(m, traffic) for m in traffic)
    assert transmission_delay_bound(traffic, inaccessibility_bits=100) == worst + 100


def test_transmission_delay_bound_unschedulable():
    traffic = [spec(1, period=100), spec(2, period=100)]
    assert transmission_delay_bound(traffic) is None


def test_utilization():
    traffic = [spec(1, period=1_000, dlc=8)]
    expected = traffic[0].transmission_bits / 1_000
    assert utilization(traffic) == pytest.approx(expected)


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        MessageSpec(identifier=1, period=0)
    with pytest.raises(ConfigurationError):
        MessageSpec(identifier=1, period=10, dlc=9)
    with pytest.raises(ConfigurationError):
        MessageSpec(identifier=1, period=10, jitter=-1)
