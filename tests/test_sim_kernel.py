"""Unit tests for the simulator kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_initial_time_is_zero():
    assert Simulator().now == 0


def test_schedule_and_run_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(100, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [100]
    assert sim.now == 100


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(50, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [50]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_run_until_stops_at_boundary():
    sim = Simulator()
    seen = []
    sim.schedule(10, lambda: seen.append("early"))
    sim.schedule(100, lambda: seen.append("late"))
    sim.run_until(50)
    assert seen == ["early"]
    assert sim.now == 50
    sim.run_until(100)
    assert seen == ["early", "late"]


def test_run_until_includes_events_at_exact_time():
    sim = Simulator()
    seen = []
    sim.schedule(50, lambda: seen.append(1))
    sim.run_until(50)
    assert seen == [1]


def test_run_until_past_rejected():
    sim = Simulator()
    sim.run_until(10)
    with pytest.raises(SimulationError):
        sim.run_until(5)


def test_run_for_advances_relative():
    sim = Simulator()
    sim.run_until(100)
    sim.run_for(50)
    assert sim.now == 150


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def chain():
        seen.append(sim.now)
        if sim.now < 30:
            sim.schedule(10, chain)

    sim.schedule(10, chain)
    sim.run()
    assert seen == [10, 20, 30]


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_run_max_events():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.schedule(i + 1, lambda i=i: seen.append(i))
    sim.run(max_events=3)
    assert seen == [0, 1, 2]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    seen = []
    event = sim.schedule(10, lambda: seen.append("no"))
    sim.schedule(5, event.cancel)
    sim.run()
    assert seen == []


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(i + 1, lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    event = sim.schedule(20, lambda: None)
    assert sim.pending_events == 2
    event.cancel()
    assert sim.pending_events == 1


def test_pending_events_survives_heavy_cancel_rearm():
    """The surveillance-timer idiom: cancel + re-arm on every frame."""
    sim = Simulator()
    live = None
    for i in range(500):
        if live is not None:
            live.cancel()
        live = sim.schedule(1000 + i, lambda: None)
    assert sim.pending_events == 1


def test_metrics_registry_attached():
    sim = Simulator()
    sim.metrics.counter("x").inc(3)
    assert sim.metrics.counter("x").value == 3


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    sim.schedule(10, lambda: order.append("a"))
    sim.schedule(10, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b"]
