"""Unit tests for the simulator kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_initial_time_is_zero():
    assert Simulator().now == 0


def test_schedule_and_run_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(100, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [100]
    assert sim.now == 100


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(50, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [50]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_run_until_stops_at_boundary():
    sim = Simulator()
    seen = []
    sim.schedule(10, lambda: seen.append("early"))
    sim.schedule(100, lambda: seen.append("late"))
    sim.run_until(50)
    assert seen == ["early"]
    assert sim.now == 50
    sim.run_until(100)
    assert seen == ["early", "late"]


def test_run_until_includes_events_at_exact_time():
    sim = Simulator()
    seen = []
    sim.schedule(50, lambda: seen.append(1))
    sim.run_until(50)
    assert seen == [1]


def test_run_until_past_rejected():
    sim = Simulator()
    sim.run_until(10)
    with pytest.raises(SimulationError):
        sim.run_until(5)


def test_run_for_advances_relative():
    sim = Simulator()
    sim.run_until(100)
    sim.run_for(50)
    assert sim.now == 150


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def chain():
        seen.append(sim.now)
        if sim.now < 30:
            sim.schedule(10, chain)

    sim.schedule(10, chain)
    sim.run()
    assert seen == [10, 20, 30]


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_run_max_events():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.schedule(i + 1, lambda i=i: seen.append(i))
    sim.run(max_events=3)
    assert seen == [0, 1, 2]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    seen = []
    event = sim.schedule(10, lambda: seen.append("no"))
    sim.schedule(5, event.cancel)
    sim.run()
    assert seen == []


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(i + 1, lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    event = sim.schedule(20, lambda: None)
    assert sim.pending_events == 2
    event.cancel()
    assert sim.pending_events == 1


def test_pending_events_survives_heavy_cancel_rearm():
    """The surveillance-timer idiom: cancel + re-arm on every frame."""
    sim = Simulator()
    live = None
    for i in range(500):
        if live is not None:
            live.cancel()
        live = sim.schedule(1000 + i, lambda: None)
    assert sim.pending_events == 1


def test_metrics_registry_attached():
    sim = Simulator()
    sim.metrics.counter("x").inc(3)
    assert sim.metrics.counter("x").value == 3


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    sim.schedule(10, lambda: order.append("a"))
    sim.schedule(10, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b"]


# -- event budgets (run/run_until return counts; a 0 budget fires nothing) ----


def make_sims():
    """One simulator per queue implementation the kernel supports."""
    from repro.perf.legacy import LegacyEventQueue

    fast = Simulator()
    legacy = Simulator()
    legacy._queue = LegacyEventQueue()
    return {"fast": fast, "legacy": legacy}


@pytest.fixture(params=["fast", "legacy"])
def any_sim(request):
    return make_sims()[request.param]


def test_run_returns_fired_count(any_sim):
    for i in range(5):
        any_sim.schedule(i + 1, lambda: None)
    assert any_sim.run() == 5


def test_run_zero_budget_fires_nothing(any_sim):
    """Regression: ``max_events=0`` used to fire one event anyway."""
    seen = []
    any_sim.schedule(10, lambda: seen.append(1))
    assert any_sim.run(max_events=0) == 0
    assert seen == []
    assert any_sim.now == 0
    assert any_sim.pending_events == 1


def test_run_until_zero_budget_fires_nothing_and_keeps_clock(any_sim):
    seen = []
    any_sim.schedule(10, lambda: seen.append(1))
    assert any_sim.run_until(50, max_events=0) == 0
    assert seen == []
    assert any_sim.now == 0


def test_run_negative_budget_rejected(any_sim):
    with pytest.raises(SimulationError):
        any_sim.run(max_events=-1)
    with pytest.raises(SimulationError):
        any_sim.run_until(10, max_events=-1)


def test_run_budget_stops_exactly(any_sim):
    seen = []
    for i in range(5):
        any_sim.schedule(i + 1, lambda i=i: seen.append(i))
    assert any_sim.run(max_events=3) == 3
    assert seen == [0, 1, 2]
    assert any_sim.now == 3  # clock stays at the last fired event


def test_run_until_budget_exhausted_keeps_clock_at_last_event(any_sim):
    for i in range(5):
        any_sim.schedule(i + 1, lambda: None)
    assert any_sim.run_until(100, max_events=2) == 2
    assert any_sim.now == 2


def test_run_until_budget_not_exhausted_advances_clock(any_sim):
    any_sim.schedule(10, lambda: None)
    assert any_sim.run_until(100, max_events=5) == 1
    assert any_sim.now == 100


def test_run_until_returns_fired_count(any_sim):
    for i in range(4):
        any_sim.schedule(i + 1, lambda: None)
    assert any_sim.run_until(2) == 2
    assert any_sim.run_until(10) == 2


# -- reentrancy guard ---------------------------------------------------------


def test_nested_run_raises(any_sim):
    errors = []

    def nested():
        try:
            any_sim.run()
        except SimulationError as exc:
            errors.append(str(exc))

    any_sim.schedule(10, nested)
    any_sim.run()
    assert len(errors) == 1
    assert "re-entered" in errors[0]
    # The guard must reset: a fresh drain works.
    any_sim.schedule(5, lambda: None)
    assert any_sim.run() == 1


def test_nested_run_until_raises(any_sim):
    errors = []
    any_sim.schedule(10, lambda: errors.append(0) or any_sim.run_until(99))
    with pytest.raises(SimulationError, match="re-entered"):
        any_sim.run_until(50)


def test_running_property_reflects_drain(any_sim):
    states = []
    any_sim.schedule(10, lambda: states.append(any_sim.running))
    assert not any_sim.running
    any_sim.run()
    assert states == [True]
    assert not any_sim.running


# -- analytic idle-skip -------------------------------------------------------


def test_next_event_time(any_sim):
    assert any_sim.next_event_time() is None
    any_sim.schedule(30, lambda: None)
    assert any_sim.next_event_time() == 30


def test_advance_to_next_event_jumps_without_firing(any_sim):
    seen = []
    any_sim.schedule(500, lambda: seen.append(any_sim.now))
    assert any_sim.advance_to_next_event() == 500
    assert any_sim.now == 500
    assert seen == []
    any_sim.run()
    assert seen == [500]


def test_advance_to_next_event_empty_queue(any_sim):
    assert any_sim.advance_to_next_event() is None
    assert any_sim.now == 0


def test_advance_to_next_event_never_rewinds(any_sim):
    any_sim.schedule(10, lambda: None)
    any_sim.run_until(50)
    any_sim.schedule(5, lambda: None)  # deadline 55 > now
    any_sim.schedule_at(55, lambda: None)
    assert any_sim.advance_to_next_event() == 55
    assert any_sim.now == 55


def test_advance_to_next_event_inside_drain_raises(any_sim):
    errors = []

    def inside():
        try:
            any_sim.advance_to_next_event()
        except SimulationError:
            errors.append(1)

    any_sim.schedule(10, inside)
    any_sim.run()
    assert errors == [1]


def test_run_for_returns_fired_count(any_sim):
    any_sim.schedule(10, lambda: None)
    any_sim.schedule(20, lambda: None)
    assert any_sim.run_for(15) == 1
    assert any_sim.now == 15


# -- batched same-timestamp dispatch ------------------------------------------


def batching_modes():
    return [True, False]


@pytest.mark.parametrize("batch", batching_modes())
def test_same_time_priority_order(batch):
    sim = Simulator(batch_dispatch=batch)
    order = []
    sim.schedule(10, lambda: order.append("low"), priority=5)
    sim.schedule(10, lambda: order.append("high"), priority=0)
    sim.schedule(10, lambda: order.append("low2"), priority=5)
    sim.run()
    assert order == ["high", "low", "low2"]


@pytest.mark.parametrize("batch", batching_modes())
def test_urgent_event_scheduled_mid_batch_preempts(batch):
    """An action scheduling a *more urgent* same-instant event sees it fire
    before the remaining batch entries."""
    sim = Simulator(batch_dispatch=batch)
    order = []

    def first():
        order.append("first")
        sim.schedule(0, lambda: order.append("urgent"), priority=-1)

    sim.schedule(10, first, priority=0)
    sim.schedule(10, lambda: order.append("second"), priority=0)
    sim.run()
    assert order == ["first", "urgent", "second"]


@pytest.mark.parametrize("batch", batching_modes())
def test_equal_priority_scheduled_mid_batch_fires_after(batch):
    sim = Simulator(batch_dispatch=batch)
    order = []

    def first():
        order.append("first")
        sim.schedule(0, lambda: order.append("late"), priority=0)

    sim.schedule(10, first, priority=0)
    sim.schedule(10, lambda: order.append("second"), priority=0)
    sim.run()
    assert order == ["first", "second", "late"]


@pytest.mark.parametrize("batch", batching_modes())
def test_mid_batch_cancel_skips_detached_event(batch):
    """An action cancelling a *later* same-instant event must suppress it
    even after the batch loop detached it from the queue."""
    sim = Simulator(batch_dispatch=batch)
    order = []
    box = {}
    # Scheduled first so it fires first; cancels the later entry.
    sim.schedule(10, lambda: (order.append("killer"), box["victim"].cancel()))
    box["victim"] = sim.schedule(10, lambda: order.append("victim"))
    sim.run()
    assert order == ["killer"]


@pytest.mark.parametrize("batch", batching_modes())
def test_rescheduled_event_orders_like_fresh_push(batch):
    """In-place reschedule is order-equivalent to cancel + push."""
    sim = Simulator(batch_dispatch=batch)
    order = []
    moved = sim.schedule(10, lambda: order.append("moved"))
    sim.schedule(20, lambda: order.append("peer"))
    assert sim.try_reschedule(moved, 20)
    sim.run()
    # The reschedule consumed a fresh seq, so "moved" now follows "peer".
    assert order == ["peer", "moved"]


def test_batch_dispatch_module_flag(monkeypatch):
    import repro.sim.kernel as kernel_mod

    monkeypatch.setattr(kernel_mod, "BATCH_DISPATCH", False)
    sim = Simulator()  # inherits the module default at drain time
    order = []
    sim.schedule(10, lambda: order.append("a"))
    sim.schedule(10, lambda: order.append("b"))
    assert sim.run() == 2
    assert order == ["a", "b"]


# -- try_reschedule -----------------------------------------------------------


def test_try_reschedule_defers_in_place():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, lambda: fired.append(sim.now))
    assert sim.try_reschedule(event, 40)
    assert sim.pending_events == 1
    sim.run()
    assert fired == [40]


def test_try_reschedule_refuses_earlier_deadline():
    sim = Simulator()
    event = sim.schedule(50, lambda: None)
    assert not sim.try_reschedule(event, 10)


def test_try_reschedule_refuses_cancelled_event():
    sim = Simulator()
    event = sim.schedule(10, lambda: None)
    event.cancel()
    assert not sim.try_reschedule(event, 20)


def test_try_reschedule_refuses_legacy_queue():
    from repro.perf.legacy import LegacyEventQueue

    sim = Simulator()
    sim._queue = LegacyEventQueue()
    event = sim.schedule(10, lambda: None)
    assert not sim.try_reschedule(event, 20)


def test_try_reschedule_refuses_detached_event():
    sim = Simulator()
    box = {}

    def action():
        # While firing, the event is no longer owned by the queue.
        box["result"] = sim.try_reschedule(box["event"], sim.now + 10)

    box["event"] = sim.schedule(10, action)
    sim.run()
    assert box["result"] is False
