"""Deterministic schedule execution, minimization and artifacts.

The replay contract lives here: the same schedule always produces the same
trace fingerprint, planted mutations produce violations the minimizer
shrinks, and counterexample artifacts round-trip bit-for-bit.
"""

import io
import json

import pytest

from repro.check import (
    Fault,
    FaultSchedule,
    minimize_schedule,
    read_artifact,
    replay_artifact,
    run_schedule,
    write_artifact,
)
from repro.check.artifact import FORMAT, iter_slice
from repro.check.runner import expected_members
from repro.check.schedule import (
    ACTION_CRASH,
    ACTION_JOIN,
    ACTION_LEAVE,
    ACTION_OMIT,
    OMISSION_INCONSISTENT,
)
from repro.check.selftest import MUTATIONS, minimize_planted
from repro.errors import CheckError

# The duplicate-delivery mutation only manifests when some node learns a
# failure from the FDA frame alone (and so requests a retransmission,
# producing the second physical copy): keep a non-member on the bus.
CRASH = FaultSchedule(
    nodes=5, members=4, faults=(Fault(ACTION_CRASH, node=2, at_ms=25.0),)
)


# -- expected survivor set ----------------------------------------------------------


def test_expected_members_folds_timed_actions():
    schedule = FaultSchedule(
        nodes=5,
        members=4,
        faults=(
            Fault(ACTION_CRASH, node=1),
            Fault(ACTION_JOIN, node=4, at_ms=25.0),
            Fault(ACTION_LEAVE, node=0, at_ms=60.0),
        ),
    )
    assert expected_members(schedule) == {2, 3, 4}


def test_expected_members_counts_crash_sender():
    schedule = FaultSchedule(
        nodes=4,
        members=4,
        faults=(
            Fault(
                ACTION_OMIT,
                node=1,
                frame_type="ELS",
                omission=OMISSION_INCONSISTENT,
                accepting=(2,),
                crash_sender=True,
            ),
        ),
    )
    assert expected_members(schedule) == {0, 2, 3}


# -- run_schedule -------------------------------------------------------------------


def test_fault_free_schedule_is_ok():
    result = run_schedule(FaultSchedule(nodes=4, members=4))
    assert result.ok
    assert result.final_members == [0, 1, 2, 3]
    assert result.expected_members == [0, 1, 2, 3]
    assert len(result.fingerprint) == 64
    assert result.events > 0


def test_crash_schedule_detects_and_agrees():
    result = run_schedule(CRASH)
    assert result.ok
    assert result.final_members == [0, 1, 3]


def test_fingerprint_is_deterministic():
    assert run_schedule(CRASH).fingerprint == run_schedule(CRASH).fingerprint


def test_fingerprint_separates_behaviours():
    other = FaultSchedule(
        nodes=5, members=4, faults=(Fault(ACTION_LEAVE, node=2, at_ms=25.0),)
    )
    assert run_schedule(CRASH).fingerprint != run_schedule(other).fingerprint


def test_planted_mutation_yields_violation():
    with MUTATIONS["fda-duplicate-delivery"].plant():
        result = run_schedule(CRASH)
    assert result.violating
    assert result.monitor == "no-duplicate-failure-sign"
    assert result.violation_slice  # the offending trace window rides along
    round_tripped = type(result).from_dict(result.to_dict())
    assert round_tripped.schedule == CRASH
    assert round_tripped.fingerprint == result.fingerprint


def test_missed_detection_mutation_fails_final_state():
    with MUTATIONS["fd-missed-detection"].plant():
        result = run_schedule(CRASH)
    assert result.violating
    assert result.monitor == "final-state"
    assert 2 in set(result.final_members)  # the crashed node never left


# -- minimizer ----------------------------------------------------------------------


def test_minimize_rejects_passing_schedule():
    with pytest.raises(ValueError, match="violating"):
        minimize_schedule(CRASH)


def test_minimize_shrinks_to_single_relevant_fault():
    padded = FaultSchedule(
        nodes=5,
        members=4,
        faults=(
            Fault(ACTION_OMIT, frame_type="ELS", nth=1),
            Fault(ACTION_CRASH, node=2, at_ms=25.0),
            Fault(ACTION_JOIN, node=4, at_ms=60.0),
        ),
    )
    outcome = minimize_planted("fda-duplicate-delivery", padded)
    assert outcome.result.violating
    assert outcome.schedule.depth == 1
    assert outcome.schedule.faults[0].action == ACTION_CRASH
    assert outcome.runs <= 10  # ddmin + cache keeps the oracle budget tiny


def test_minimize_respects_run_budget():
    padded = FaultSchedule(
        nodes=5,
        members=4,
        faults=(
            Fault(ACTION_CRASH, node=2, at_ms=25.0),
            Fault(ACTION_OMIT, frame_type="FDA"),
        ),
    )
    outcome = minimize_planted("fda-duplicate-delivery", padded, max_runs=1)
    # Budget exhausted after the entry probe: the original comes back,
    # still violating.
    assert outcome.schedule == padded
    assert outcome.result.violating
    assert outcome.runs == 1


# -- artifacts ----------------------------------------------------------------------


def _violating_result():
    with MUTATIONS["fda-duplicate-delivery"].plant():
        return run_schedule(CRASH)


def test_artifact_roundtrip_file(tmp_path):
    result = _violating_result()
    path = str(tmp_path / "cex.jsonl")
    write_artifact(path, result, extra={"mutation": "fda-duplicate-delivery"})
    schedule, expected, header = read_artifact(path)
    assert schedule == CRASH
    assert expected["verdict"] == "violation"
    assert expected["fingerprint"] == result.fingerprint
    assert header["format"] == FORMAT
    assert header["mutation"] == "fda-duplicate-delivery"
    assert list(iter_slice(path)) == result.violation_slice


def test_replay_reproduces_bit_for_bit(tmp_path):
    result = _violating_result()
    path = str(tmp_path / "cex.jsonl")
    write_artifact(path, result)
    with MUTATIONS["fda-duplicate-delivery"].plant():
        fresh, expected = replay_artifact(path)
    assert fresh.fingerprint == result.fingerprint
    assert expected["monitor"] == result.monitor


def test_replay_detects_behaviour_drift(tmp_path):
    """Replaying a mutation-recorded artifact on clean code must fail
    loudly — the artifact describes behaviour this code does not have."""
    result = _violating_result()
    path = str(tmp_path / "cex.jsonl")
    write_artifact(path, result)
    with pytest.raises(CheckError, match="did not reproduce"):
        replay_artifact(path)


def test_artifact_accepts_io_handles():
    result = _violating_result()
    buffer = io.StringIO()
    write_artifact(buffer, result)
    buffer.seek(0)
    schedule, expected, _header = read_artifact(buffer)
    assert schedule == CRASH
    assert expected["fingerprint"] == result.fingerprint


def test_truncated_artifact_rejected():
    with pytest.raises(CheckError, match="truncated"):
        read_artifact(io.StringIO('{"format": "repro.check/1"}\n'))


def test_wrong_format_rejected():
    lines = [json.dumps({"format": "other/9"})] * 3
    with pytest.raises(CheckError, match="not a repro.check/1"):
        read_artifact(io.StringIO("\n".join(lines)))


def test_malformed_json_rejected():
    with pytest.raises(CheckError, match="malformed artifact header"):
        read_artifact(io.StringIO("not json\n{}\n{}\n"))
    with pytest.raises(CheckError, match="not an object"):
        read_artifact(io.StringIO("[1]\n{}\n{}\n"))


def test_summary_missing_fingerprint_rejected():
    lines = [
        json.dumps({"format": FORMAT}),
        json.dumps(FaultSchedule().to_dict()),
        json.dumps({"verdict": "violation"}),  # no fingerprint
    ]
    with pytest.raises(CheckError, match="lacks 'fingerprint'"):
        read_artifact(io.StringIO("\n".join(lines)))


def test_run_schedule_on_the_swim_backend_across_segments():
    result = run_schedule(CRASH, monitors=False, backend="swim", segments=2)
    assert result.ok
    assert result.final_members == [0, 1, 3]


def test_run_schedule_monitors_require_the_canely_backend():
    with pytest.raises(CheckError):
        run_schedule(CRASH, backend="swim")
