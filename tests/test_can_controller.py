"""Unit tests for the CAN controller (queue, counters, fault confinement)."""

from repro.can.controller import (
    BUS_OFF_THRESHOLD,
    ERROR_PASSIVE_THRESHOLD,
    CanController,
    ControllerState,
)
from repro.can.frame import data_frame, remote_frame
from repro.can.identifiers import MessageId, MessageType


def mid(mtype=MessageType.DATA, node=0, ref=0):
    return MessageId(mtype, node=node, ref=ref)


def test_initial_state():
    controller = CanController(1)
    assert controller.state is ControllerState.ERROR_ACTIVE
    assert controller.alive
    assert controller.queue_depth == 0


def test_submit_enqueues():
    controller = CanController(1)
    request = controller.submit(data_frame(mid(), b"x"))
    assert request is not None
    assert controller.queue_depth == 1
    assert controller.head_request() is request


def test_queue_orders_by_priority():
    controller = CanController(1)
    controller.submit(data_frame(mid(MessageType.DATA, ref=5), b""))
    controller.submit(remote_frame(mid(MessageType.FDA, node=2)))
    head = controller.head_request()
    assert head.frame.mid.mtype is MessageType.FDA


def test_fifo_within_same_identifier():
    controller = CanController(1)
    first = controller.submit(data_frame(mid(ref=1), b"a"))
    second = controller.submit(data_frame(mid(ref=1), b"b"))
    assert controller.head_request() is first


def test_data_frame_beats_remote_frame_same_identifier():
    controller = CanController(1)
    controller.submit(remote_frame(mid(MessageType.RHA, node=1)))
    controller.submit(data_frame(mid(MessageType.RHA, node=1), b""))
    assert not controller.head_request().frame.remote


def test_abort_removes_pending():
    controller = CanController(1)
    target = mid(ref=3)
    controller.submit(data_frame(target, b"x"))
    controller.submit(data_frame(mid(ref=4), b"y"))
    assert controller.abort(target)
    assert controller.queue_depth == 1
    assert not controller.has_pending(target)


def test_abort_missing_returns_false():
    controller = CanController(1)
    assert not controller.abort(mid(ref=9))


def test_take_removes_from_queue():
    controller = CanController(1)
    request = controller.submit(data_frame(mid(), b""))
    controller.take(request)
    assert controller.queue_depth == 0


def test_finish_success_decrements_tec_and_confirms():
    controller = CanController(1)
    controller.tec = 10
    confirmed = []
    controller.on_tx_success = confirmed.append
    request = controller.submit(data_frame(mid(), b""))
    controller.take(request)
    controller.finish_success(request)
    assert controller.tec == 9
    assert len(confirmed) == 1


def test_tec_never_negative():
    controller = CanController(1)
    request = controller.submit(data_frame(mid(), b""))
    controller.take(request)
    controller.finish_success(request)
    assert controller.tec == 0


def test_finish_error_requeues_and_bumps_tec():
    controller = CanController(1)
    request = controller.submit(data_frame(mid(), b""))
    controller.take(request)
    controller.finish_error(request)
    assert controller.tec == 8
    assert controller.queue_depth == 1
    assert request.attempts == 1


def test_error_passive_transition():
    controller = CanController(1)
    controller.tec = ERROR_PASSIVE_THRESHOLD + 1
    assert controller.state is ControllerState.ERROR_PASSIVE


def test_rec_drives_error_passive_too():
    controller = CanController(1)
    controller.rec = ERROR_PASSIVE_THRESHOLD + 1
    assert controller.state is ControllerState.ERROR_PASSIVE


def test_bus_off_transition_and_fail_silence():
    controller = CanController(1)
    controller.tec = BUS_OFF_THRESHOLD + 1
    assert controller.state is ControllerState.BUS_OFF
    assert not controller.alive
    assert controller.submit(data_frame(mid(), b"")) is None


def test_bus_off_reached_by_repeated_errors():
    """32 consecutive transmit errors at +8 each cross the 255 threshold."""
    controller = CanController(1)
    request = controller.submit(data_frame(mid(), b""))
    for _ in range(32):
        controller.take(request)
        controller.finish_error(request)
    assert controller.state is ControllerState.BUS_OFF


def test_crash_clears_queue_and_silences():
    controller = CanController(1)
    controller.submit(data_frame(mid(), b""))
    controller.crash()
    assert controller.queue_depth == 0
    assert not controller.alive
    assert controller.head_request() is None
    assert controller.submit(data_frame(mid(), b"")) is None


def test_finish_error_after_crash_does_not_requeue():
    controller = CanController(1)
    request = controller.submit(data_frame(mid(), b""))
    controller.take(request)
    controller.crash()
    controller.finish_error(request)
    assert controller.queue_depth == 0


def test_deliver_decrements_rec():
    controller = CanController(1)
    controller.rec = 5
    controller.deliver(data_frame(mid(), b""))
    assert controller.rec == 4


def test_rx_error_increments_rec():
    controller = CanController(1)
    controller.rx_error()
    assert controller.rec == 1
