"""Unit tests for the CAN bus: arbitration, clustering, fault resolution."""

import pytest

from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.can.errormodel import FaultInjector, FaultKind
from repro.can.frame import data_frame, remote_frame
from repro.can.identifiers import MessageId, MessageType
from repro.errors import BusError
from repro.sim.kernel import Simulator


def make_bus(node_count=4, injector=None, clustering=True):
    sim = Simulator()
    bus = CanBus(sim, injector=injector, clustering=clustering)
    controllers = {}
    for node_id in range(node_count):
        controller = CanController(node_id)
        bus.attach(controller)
        controllers[node_id] = controller
    return sim, bus, controllers


def rx_log(controller):
    log = []
    controller.on_rx = log.append
    return log


def test_single_frame_delivered_to_all_including_sender():
    sim, bus, ctl = make_bus(3)
    logs = {n: rx_log(ctl[n]) for n in ctl}
    frame = data_frame(MessageId(MessageType.DATA, node=0), b"hi")
    ctl[0].submit(frame)
    sim.run()
    for log in logs.values():
        assert log == [frame]  # .ind includes own transmissions


def test_duplicate_node_id_rejected():
    sim, bus, ctl = make_bus(2)
    with pytest.raises(BusError):
        bus.attach(CanController(0))


def test_arbitration_lowest_identifier_wins():
    sim, bus, ctl = make_bus(2)
    order = []
    ctl[0].on_rx = lambda f: order.append(f.mid.mtype)
    low = remote_frame(MessageId(MessageType.FDA, node=1))
    high = data_frame(MessageId(MessageType.DATA, node=0), b"")
    # Submit both while the bus is busy so they contend at the same instant.
    blocker = data_frame(MessageId(MessageType.DATA, node=1, ref=9), b"")
    ctl[1].submit(blocker)
    sim.run_until(1000)  # the blocker is on the wire now
    ctl[0].submit(high)
    ctl[1].submit(low)
    sim.run()
    assert order == [MessageType.DATA, MessageType.FDA, MessageType.DATA]


def test_identical_remote_frames_cluster():
    sim, bus, ctl = make_bus(4)
    frame = remote_frame(MessageId(MessageType.ELS, node=2))
    confirmations = []
    ctl[1].on_tx_success = lambda f: confirmations.append(1)
    ctl[3].on_tx_success = lambda f: confirmations.append(3)
    ctl[1].submit(frame)
    ctl[3].submit(frame)
    sim.run()
    assert bus.stats.physical_frames == 1
    assert bus.stats.clustered_requests == 1
    assert sorted(confirmations) == [1, 3]  # both requesters confirmed


def test_clustering_disabled_serializes():
    sim, bus, ctl = make_bus(4, clustering=False)
    frame = remote_frame(MessageId(MessageType.ELS, node=2))
    ctl[1].submit(frame)
    ctl[3].submit(frame)
    sim.run()
    assert bus.stats.physical_frames == 2
    assert bus.stats.clustered_requests == 0


def test_conflicting_data_frames_same_identifier_raise():
    sim, bus, ctl = make_bus(2)
    mid = MessageId(MessageType.DATA, node=0)
    blocker = data_frame(MessageId(MessageType.DATA, node=1, ref=9), b"")
    ctl[1].submit(blocker)
    ctl[0].submit(data_frame(mid, b"a"))
    ctl[1].submit(data_frame(mid, b"b"))
    with pytest.raises(BusError):
        sim.run()


def test_data_frame_beats_remote_frame_in_arbitration():
    sim, bus, ctl = make_bus(3)
    mid = MessageId(MessageType.RHA, node=0)
    order = []
    ctl[2].on_rx = lambda f: order.append(f.remote)
    blocker = data_frame(MessageId(MessageType.DATA, node=1, ref=9), b"")
    ctl[1].submit(blocker)
    sim.run_until(1000)  # the blocker is on the wire now
    ctl[0].submit(data_frame(mid, b"v"))
    ctl[1].submit(remote_frame(mid))
    sim.run()
    assert order[1] is False  # the data frame went first
    assert order[2] is True


def test_consistent_omission_retransmits_automatically():
    injector = FaultInjector()
    injector.fault_on_transmission(0, FaultKind.CONSISTENT_OMISSION)
    sim, bus, ctl = make_bus(2, injector=injector)
    log = rx_log(ctl[1])
    frame = data_frame(MessageId(MessageType.DATA, node=0), b"x")
    ctl[0].submit(frame)
    sim.run()
    assert log == [frame]  # exactly one delivery, after the retry
    assert bus.stats.physical_frames == 2
    assert bus.stats.error_frames == 1
    assert ctl[0].tec > 0


def test_inconsistent_omission_duplicates_at_accepting_subset():
    injector = FaultInjector()
    injector.fault_on_transmission(
        0, FaultKind.INCONSISTENT_OMISSION, accepting=[2]
    )
    sim, bus, ctl = make_bus(3, injector=injector)
    log1, log2 = rx_log(ctl[1]), rx_log(ctl[2])
    frame = data_frame(MessageId(MessageType.DATA, node=0), b"x")
    ctl[0].submit(frame)
    sim.run()
    assert log1 == [frame]  # one copy, from the retransmission
    assert log2 == [frame, frame]  # duplicate: accepted both attempts


def test_inconsistent_omission_with_sender_crash_is_lost_at_subset():
    """The paper's inconsistent-omission scenario (LCAN2 violation)."""
    injector = FaultInjector()
    injector.fault_on_transmission(
        0, FaultKind.INCONSISTENT_OMISSION, accepting=[2], crash_sender=True
    )
    sim, bus, ctl = make_bus(3, injector=injector)
    log1, log2 = rx_log(ctl[1]), rx_log(ctl[2])
    frame = data_frame(MessageId(MessageType.DATA, node=0), b"x")
    ctl[0].submit(frame)
    sim.run()
    assert log2 == [frame]  # the subset got it
    assert log1 == []  # the rest never will: inconsistent omission
    assert ctl[0].crashed


def test_crashed_node_receives_nothing():
    sim, bus, ctl = make_bus(3)
    log = rx_log(ctl[2])
    ctl[2].crash()
    ctl[0].submit(data_frame(MessageId(MessageType.DATA, node=0), b""))
    sim.run()
    assert log == []


def test_frames_serialize_back_to_back():
    sim, bus, ctl = make_bus(2)
    times = []
    ctl[1].on_rx = lambda f: times.append(sim.now)
    for ref in range(3):
        ctl[0].submit(data_frame(MessageId(MessageType.DATA, node=0, ref=ref), b""))
    sim.run()
    assert len(times) == 3
    assert times[0] < times[1] < times[2]
    # Gap between consecutive deliveries >= frame duration (no overlap).
    frame_ticks = bus.timing.bits_to_ticks(
        data_frame(MessageId(MessageType.DATA, node=0), b"").wire_bits(False)
    )
    assert times[1] - times[0] >= frame_ticks


def test_stats_account_busy_bits():
    sim, bus, ctl = make_bus(2)
    frame = data_frame(MessageId(MessageType.DATA, node=0), b"abc")
    ctl[0].submit(frame)
    sim.run()
    assert bus.stats.busy_bits == frame.wire_bits(with_interframe=True)
    assert bus.stats.bits_by_type == {"DATA": bus.stats.busy_bits}


def test_utilization_fraction():
    sim, bus, ctl = make_bus(2)
    ctl[0].submit(data_frame(MessageId(MessageType.DATA, node=0), b""))
    sim.run()
    sim.run_until(sim.now * 2)  # idle for as long again
    assert 0.4 < bus.utilization() < 0.6


def test_trace_records_transmissions_and_deliveries():
    sim, bus, ctl = make_bus(2)
    ctl[0].submit(data_frame(MessageId(MessageType.DATA, node=0), b""))
    sim.run()
    assert sim.trace.count("bus.tx") == 1
    assert sim.trace.count("bus.deliver") == 2  # both nodes, sender included


def test_submissions_while_busy_queue_up():
    sim, bus, ctl = make_bus(2)
    received = []
    ctl[1].on_rx = lambda f: received.append(f.mid.ref)
    ctl[0].submit(data_frame(MessageId(MessageType.DATA, node=0, ref=1), b""))
    # Submit a higher-priority frame mid-transmission.
    sim.schedule(1000, lambda: ctl[1].submit(
        remote_frame(MessageId(MessageType.ELS, node=1, ref=2))
    ))
    sim.run()
    # The in-flight frame completes first; the ELS follows (and is also
    # delivered back to its own sender, node 1).
    assert received == [1, 2]
