"""Unit tests for named RNG streams."""

from repro.sim.rng import RngStreams


def test_same_seed_same_sequence():
    a = RngStreams(seed=7).stream("faults")
    b = RngStreams(seed=7).stream("faults")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = RngStreams(seed=1).stream("faults")
    b = RngStreams(seed=2).stream("faults")
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_streams_are_independent_of_creation_order():
    streams_a = RngStreams(seed=3)
    streams_b = RngStreams(seed=3)
    # Different creation order, same per-stream sequences.
    first_a = streams_a.stream("x").random()
    streams_b.stream("y")
    first_b = streams_b.stream("x").random()
    assert first_a == first_b


def test_distinct_names_distinct_streams():
    streams = RngStreams(seed=5)
    x = [streams.stream("x").random() for _ in range(5)]
    y = [streams.stream("y").random() for _ in range(5)]
    assert x != y


def test_stream_is_cached():
    streams = RngStreams(seed=0)
    assert streams.stream("s") is streams.stream("s")


def test_seed_property():
    assert RngStreams(seed=42).seed == 42
