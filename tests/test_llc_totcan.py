"""Unit tests for TOTCAN (totally ordered atomic broadcast)."""

from repro.can.errormodel import FaultInjector, FaultKind
from repro.can.identifiers import MessageType
from repro.llc.totcan import Totcan
from repro.sim.clock import ms


def wire(net, stability=ms(2), discard=ms(10)):
    protocols = {}
    delivered = {}
    for node_id, layer in net.layers.items():
        protocol = Totcan(
            layer,
            net.timers[node_id],
            net.sim,
            stability_delay=stability,
            discard_timeout=discard,
        )
        log = []
        protocol.on_deliver(lambda s, r, d, log=log: log.append((s, r)))
        protocols[node_id] = protocol
        delivered[node_id] = log
    return protocols, delivered


def test_single_broadcast_delivered_everywhere(raw_bus):
    net = raw_bus(4)
    protocols, delivered = wire(net)
    ref = protocols[0].broadcast(b"m")
    net.sim.run_until(ms(30))
    for log in delivered.values():
        assert log == [(0, ref)]


def test_total_order_across_concurrent_senders(raw_bus):
    net = raw_bus(5)
    protocols, delivered = wire(net)
    for sender in (0, 1, 2, 3):
        protocols[sender].broadcast(bytes([sender]))
    net.sim.run_until(ms(50))
    orders = list(delivered.values())
    assert len(orders[0]) == 4
    for order in orders[1:]:
        assert order == orders[0]  # identical delivery order everywhere


def test_atomicity_sender_crash_before_accept(raw_bus):
    """A message whose ACCEPT never appears is delivered by nobody."""
    injector = FaultInjector()
    # Destroy the data frame consistently and kill the sender: the accept
    # is never issued (the sender's cnf never happens).
    injector.fault_on_frame(
        lambda f: f.mid.mtype is MessageType.DATA and not f.remote,
        FaultKind.CONSISTENT_OMISSION,
        crash_sender=True,
    )
    net = raw_bus(4, injector=injector)
    protocols, delivered = wire(net)
    protocols[0].broadcast(b"never")
    net.sim.run_until(ms(50))
    for log in delivered.values():
        assert log == []


def test_order_preserved_under_inconsistent_accept(raw_bus):
    injector = FaultInjector()
    # The first BCTRL (accept) transmission suffers an inconsistent omission.
    injector.fault_on_frame(
        lambda f: f.mid.mtype is MessageType.BCTRL,
        FaultKind.INCONSISTENT_OMISSION,
        accepting=[3],
    )
    net = raw_bus(5, injector=injector)
    protocols, delivered = wire(net, stability=ms(3))
    protocols[0].broadcast(b"a")
    protocols[1].broadcast(b"b")
    net.sim.run_until(ms(60))
    orders = list(delivered.values())
    assert len(orders[0]) == 2
    for order in orders[1:]:
        assert order == orders[0]


def test_delivered_count(raw_bus):
    net = raw_bus(3)
    protocols, _ = wire(net)
    protocols[0].broadcast(b"x")
    protocols[1].broadcast(b"y")
    net.sim.run_until(ms(30))
    assert protocols[2].delivered_count == 2
