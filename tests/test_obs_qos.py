"""Unit tests for the FD-QoS engine (:mod:`repro.obs.qos`).

Every test builds a tiny synthetic trace with hand-placed ``msh.change``
records, so the expected metrics — detection latencies, mistakes, the
exact ``P_A`` integral — are small integer arithmetic done by hand in
the assertions.
"""

import pytest

from repro.obs.qos import (
    QoSMetrics,
    compute_qos,
    distribution_ms,
    quantile,
)
from repro.sim.clock import ms
from repro.sim.trace import TraceRecorder


def change(trace, time, observer, active, failed=()):
    """One membership change as the stack records it."""
    trace.record(
        time,
        "msh.change",
        node=observer,
        active=frozenset(active),
        failed=frozenset(failed),
    )


# -- quantiles and distributions ---------------------------------------------


def test_quantile_nearest_rank_matches_campaign_percentile():
    from repro.campaign.report import percentile

    sample = [5, 1, 9, 3, 7]
    for fraction in (0.0, 0.25, 0.50, 0.90, 0.99, 1.0):
        assert quantile(sample, fraction) == percentile(sample, fraction)
    assert quantile([], 0.5) is None


def test_distribution_ms_converts_only_at_the_edge():
    summary = distribution_ms([ms(10), ms(20), ms(40)])
    assert summary["count"] == 3
    assert summary["min_ms"] == 10.0
    assert summary["p50_ms"] == 20.0
    assert summary["max_ms"] == 40.0
    assert summary["mean_ms"] == pytest.approx(70 / 3, abs=1e-6)


def test_distribution_ms_empty_sample_is_all_none():
    summary = distribution_ms([])
    assert summary["count"] == 0
    assert summary["p50_ms"] is None
    assert summary["mean_ms"] is None


# -- detection ---------------------------------------------------------------


def test_detection_latencies_per_observer():
    trace = TraceRecorder()
    change(trace, 150, 0, {0, 1}, failed={2})
    change(trace, 200, 1, {0, 1}, failed={2})
    qos = compute_qos(
        trace, nodes=[0, 1, 2], end=1000, crash_times={2: 100}
    )
    assert len(qos.crashes) == 1
    crash = qos.crashes[0]
    assert crash.node == 2
    assert crash.expected == 2
    assert crash.latencies == (50, 100)
    assert crash.first == 50 and crash.last == 100
    assert crash.complete
    assert qos.completeness == 1.0
    # Both removals of node 2 are genuine: no mistakes, full accuracy.
    assert qos.removals == 2
    assert not qos.mistakes
    assert qos.accuracy == 1.0


def test_multi_crash_same_cycle_feeds_every_victim():
    # One view change folds two crashes into a single membership cycle:
    # both victims must be attributed that one notification.
    trace = TraceRecorder()
    change(trace, 120, 0, {0}, failed={1, 2})
    qos = compute_qos(
        trace, nodes=[0, 1, 2], end=1000, crash_times={1: 100, 2: 100}
    )
    assert [crash.node for crash in qos.crashes] == [1, 2]
    for crash in qos.crashes:
        assert crash.latencies == (20,)
        assert crash.complete
    assert qos.completeness == 1.0


def test_crashed_observer_is_not_expected():
    # Node 1 crashes moments after node 2: it is not a *correct*
    # observer over the window, so node 2's completeness cannot be
    # charged with node 1 never learning of the crash.
    trace = TraceRecorder()
    change(trace, 150, 0, {0}, failed={1, 2})
    qos = compute_qos(
        trace, nodes=[0, 1, 2], end=1000, crash_times={2: 100, 1: 110}
    )
    by_node = {crash.node: crash for crash in qos.crashes}
    assert by_node[2].expected == 1  # only node 0
    assert by_node[2].complete
    assert qos.completeness == 1.0


def test_notification_before_crash_is_ignored():
    trace = TraceRecorder()
    change(trace, 200, 0, {0}, failed={1})  # predates the crash
    qos = compute_qos(
        trace, nodes=[0, 1], end=1000, crash_times={1: 600}
    )
    crash = qos.crashes[0]
    assert crash.latencies == ()
    assert not crash.complete
    assert qos.completeness == 0.0


# -- mistakes, flaps, accuracy ----------------------------------------------


def test_refuted_mistake_and_flap():
    trace = TraceRecorder()
    change(trace, 50, 0, {0})       # wrongful removal of live node 1
    change(trace, 80, 0, {0, 1})    # refutation / flap
    qos = compute_qos(trace, nodes=[0, 1], end=1000)
    assert len(qos.mistakes) == 1
    mistake = qos.mistakes[0]
    assert (mistake.observer, mistake.subject) == (0, 1)
    assert mistake.refuted
    assert qos.mistake_durations == [30]
    assert qos.flaps == 1
    assert qos.removals == 1
    assert qos.accuracy == 0.0
    # λ_M: one mistake over two observers watching for 1000 ticks.
    assert qos.mistake_rate == pytest.approx(1 / (2000 / ms(1000)))


def test_unrefuted_mistake_censored_at_subject_exit():
    # Observer 0 wrongly drops node 1 at t=200; node 1 genuinely
    # crashes at t=600. The mistake stands only while it contradicts
    # the ground truth: 600 - 200, not window-end - 200.
    trace = TraceRecorder()
    change(trace, 200, 0, {0}, failed={1})
    qos = compute_qos(
        trace, nodes=[0, 1], end=1000, crash_times={1: 600}
    )
    assert len(qos.mistakes) == 1
    assert not qos.mistakes[0].refuted
    assert qos.mistake_durations == [400]


def test_readd_without_prior_removal_is_not_a_flap():
    trace = TraceRecorder()
    change(trace, 350, 0, {0, 1, 2})  # admits the late joiner
    qos = compute_qos(
        trace, nodes=[0, 1], end=1000, join_times={2: 300}
    )
    assert qos.flaps == 0
    assert not qos.mistakes


# -- query accuracy (P_A) ----------------------------------------------------


def test_query_accuracy_exact_integral_on_a_crash():
    trace = TraceRecorder()
    change(trace, 150, 0, {0, 1}, failed={2})
    change(trace, 200, 1, {0, 1}, failed={2})
    qos = compute_qos(
        trace, nodes=[0, 1, 2], end=1000, crash_times={2: 100}
    )
    # By hand: observer 2 agrees fully until its own crash (300);
    # observer 0 disagrees on node 2's entry for [100, 150) (2950 of
    # 3000); observer 1 for [100, 200) (2900 of 3000).
    assert qos.agreement_ticks == 300 + 2950 + 2900
    assert qos.total_ticks == 300 + 3000 + 3000
    assert qos.query_accuracy == pytest.approx(6150 / 6300)


def test_query_accuracy_charges_admission_lag():
    # Node 2 joins the ground truth at t=300. Observer 0 admits it at
    # t=350 (50 ticks of lag); observer 1 never does (700 ticks).
    trace = TraceRecorder()
    change(trace, 350, 0, {0, 1, 2})
    qos = compute_qos(
        trace, nodes=[0, 1], end=1000, join_times={2: 300}
    )
    assert qos.agreement_ticks == (2950 + 2300)
    assert qos.total_ticks == 6000
    assert qos.query_accuracy == pytest.approx(5250 / 6000)
    # The joiner is population, not an observer.
    assert qos.population == (0, 1, 2)
    assert qos.observers == (0, 1)


def test_voluntary_leave_is_ground_truth_not_a_mistake():
    trace = TraceRecorder()
    change(trace, 520, 0, {0}, failed={1})
    qos = compute_qos(
        trace, nodes=[0, 1], end=1000, leave_times={1: 500}
    )
    assert qos.removals == 1
    assert not qos.mistakes
    assert qos.accuracy == 1.0
    # A scripted leave is not a crash: no detection entry.
    assert qos.crashes == ()


# -- serialization -----------------------------------------------------------


def test_to_json_is_deterministic_and_sorted():
    trace = TraceRecorder()
    change(trace, 150, 0, {0, 1}, failed={2})
    change(trace, 200, 1, {0, 1}, failed={2})

    def run():
        return compute_qos(
            trace, nodes=[0, 1, 2], end=1000, crash_times={2: 100}
        )

    first, second = run().to_json(), run().to_json()
    assert first == second
    import json

    readout = json.loads(first)
    assert list(readout) == sorted(readout)
    assert readout["detection_ms"]["count"] == 2


def test_summary_projects_the_headline_figures():
    trace = TraceRecorder()
    change(trace, 150, 0, {0, 1}, failed={2})
    change(trace, 200, 1, {0, 1}, failed={2})
    qos = compute_qos(
        trace, nodes=[0, 1, 2], end=1000, crash_times={2: 100}
    )
    summary = qos.summary()
    assert set(summary) == {
        "detection_p50_ms",
        "detection_p90_ms",
        "detection_p99_ms",
        "mistakes",
        "mistake_rate_per_node_s",
        "mistake_duration_mean_ms",
        "flaps",
        "query_accuracy",
        "completeness",
        "accuracy",
    }
    assert summary["mistakes"] == 0
    assert summary["completeness"] == 1.0


def test_per_segment_latencies_split_by_observer_segment():
    trace = TraceRecorder()
    change(trace, 150, 0, {0, 1}, failed={2})
    change(trace, 200, 1, {0, 1}, failed={2})
    qos = compute_qos(
        trace,
        nodes=[0, 1, 2],
        end=1000,
        crash_times={2: 100},
        segment_of={0: 0, 1: 1, 2: 0},
    )
    assert qos.segment_latencies == {0: (50,), 1: (100,)}
    readout = qos.to_dict()
    assert set(readout["per_segment"]) == {"0", "1"}


def test_network_qos_reads_the_stack():
    from repro.core.stack import CanelyNetwork
    from repro.obs.qos import network_qos
    from repro.sim.clock import ms as _ms

    net = CanelyNetwork(node_count=4)
    net.scenario().bootstrap()
    start = net.sim.now
    victim = 2
    crash_at = net.sim.now + _ms(20)
    net.sim.schedule_at(crash_at, net.node(victim).crash)
    net.run_for(_ms(150))
    qos = network_qos(net, start=start, crash_times={victim: crash_at})
    assert isinstance(qos, QoSMetrics)
    assert [crash.node for crash in qos.crashes] == [victim]
    assert qos.crashes[0].complete
    assert qos.query_accuracy is not None and qos.query_accuracy > 0.9
