"""Unit tests for CanelyConfig validation."""

import pytest

from repro.core.config import CanelyConfig
from repro.errors import ConfigurationError
from repro.sim.clock import ms


def test_defaults_are_valid():
    config = CanelyConfig()
    assert config.tm == ms(50)
    assert config.remote_surveillance == config.thb + config.ttd


def test_capacity_bounds():
    with pytest.raises(ConfigurationError):
        CanelyConfig(capacity=0)
    with pytest.raises(ConfigurationError):
        CanelyConfig(capacity=65)


def test_positive_durations_required():
    with pytest.raises(ConfigurationError):
        CanelyConfig(tm=0)
    with pytest.raises(ConfigurationError):
        CanelyConfig(thb=-1)


def test_trha_must_fit_in_cycle():
    with pytest.raises(ConfigurationError):
        CanelyConfig(tm=ms(10), trha=ms(20))


def test_join_wait_exceeds_cycle():
    with pytest.raises(ConfigurationError):
        CanelyConfig(tm=ms(50), tjoin_wait=ms(50))


def test_k_bounds_j():
    with pytest.raises(ConfigurationError):
        CanelyConfig(omission_degree=1, inconsistent_degree=2)


def test_negative_degrees_rejected():
    with pytest.raises(ConfigurationError):
        CanelyConfig(max_crash_failures=-1)


def test_detection_latency_bound():
    config = CanelyConfig(thb=ms(10), ttd=ms(2))
    assert config.detection_latency_bound == ms(12)


def test_frozen():
    config = CanelyConfig()
    with pytest.raises(AttributeError):
        config.tm = ms(1)


def test_for_population_scales_ttd():
    small = CanelyConfig.for_population(4)
    large = CanelyConfig.for_population(32)
    assert large.ttd > small.ttd
    assert large.capacity == 32


def test_for_population_accepts_overrides():
    config = CanelyConfig.for_population(8, tm=ms(100), tjoin_wait=ms(400))
    assert config.tm == ms(100)


def test_scaled_to_bit_rate():
    base = CanelyConfig()
    slow = CanelyConfig.scaled_to_bit_rate(250_000)
    assert slow.tm == 4 * base.tm
    assert slow.thb == 4 * base.thb
    assert slow.inconsistent_degree == base.inconsistent_degree


def test_scaled_to_bit_rate_with_reference_and_overrides():
    reference = CanelyConfig(tm=ms(100), thb=ms(20), tjoin_wait=ms(400))
    scaled = CanelyConfig.scaled_to_bit_rate(
        500_000, reference=reference, capacity=32
    )
    assert scaled.tm == ms(200)
    assert scaled.capacity == 32


def test_scaled_to_bit_rate_validates():
    import pytest as _pytest

    with _pytest.raises(ConfigurationError):
        CanelyConfig.scaled_to_bit_rate(0)
