"""Unit tests for the shared membership state."""

from repro.core.state import MembershipState
from repro.util.sets import NodeSet


def test_initial_sets_empty():
    state = MembershipState(capacity=16)
    assert not state.view
    assert not state.joining
    assert not state.joining_aux
    assert not state.leaving
    assert not state.failed


def test_initial_rhv_combines_sets():
    state = MembershipState(capacity=16)
    state.view = NodeSet([0, 1, 2], capacity=16)
    state.joining = NodeSet([3], capacity=16)
    state.leaving = NodeSet([1], capacity=16)
    # Fig. 7 a03: (Vs | Vj) - Vl
    assert sorted(state.initial_rhv()) == [0, 2, 3]


def test_initial_rhv_empty_state():
    assert not MembershipState(capacity=8).initial_rhv()


def test_capacity_respected():
    state = MembershipState(capacity=8)
    assert state.view.capacity == 8
    assert state.initial_rhv().capacity == 8
