"""Unit tests for OSEK network management (Section 6.6 baseline)."""

import pytest

from repro.errors import ConfigurationError
from repro.services.osek_nm import OsekNetworkManagement
from repro.sim.clock import ms, sec


def wire(raw_bus, node_count=6, t_typ=ms(100)):
    net = raw_bus(node_count)
    services = {}
    for node_id, layer in net.layers.items():
        services[node_id] = OsekNetworkManagement(
            layer,
            net.timers[node_id],
            net.sim,
            ring_nodes=list(range(node_count)),
            t_typ=t_typ,
        )
        services[node_id].start()
    return net, services


def test_ring_circulates_steadily(raw_bus):
    net, services = wire(raw_bus)
    net.sim.run_until(sec(3))
    # One ring message per TTyp bus-wide.
    total = sum(s.ring_messages_sent for s in services.values())
    assert 25 <= total <= 31
    assert services[0].detected == {}


def test_every_node_participates(raw_bus):
    net, services = wire(raw_bus)
    net.sim.run_until(sec(3))
    assert all(s.ring_messages_sent >= 3 for s in services.values())


def test_crash_detected_by_all(raw_bus):
    net, services = wire(raw_bus)
    net.sim.run_until(sec(3))
    net.controllers[4].crash()
    net.sim.run_until(sec(8))
    for node_id in range(6):
        if node_id != 4:
            assert set(services[node_id].detected) == {4}


def test_detection_latency_order_of_one_second(raw_bus):
    """Section 6.6: for TTyp = 100 ms the latency is ~1 s (>= one ring
    circulation in the worst case), versus CANELy's tens of ms."""
    net, services = wire(raw_bus)
    net.sim.run_until(sec(3))
    net.controllers[4].crash()
    crash_time = net.sim.now
    net.sim.run_until(sec(8))
    latency = services[0].detected[4] - crash_time
    assert ms(100) <= latency <= sec(2)


def test_ring_reconfigures_after_failure(raw_bus):
    net, services = wire(raw_bus)
    net.sim.run_until(sec(3))
    net.controllers[4].crash()
    net.sim.run_until(sec(8))
    sends_after_detection = services[0].ring_messages_sent
    net.sim.run_until(sec(12))
    # The ring keeps circulating without the dead node.
    assert services[0].ring_messages_sent > sends_after_detection
    assert 4 not in services[0].present_nodes


def test_dead_bootstrapper_recovered(raw_bus):
    net, services = wire(raw_bus)
    net.sim.run_until(sec(2))
    net.controllers[0].crash()  # node 0 currently drives the ring start
    net.sim.run_until(sec(10))
    for node_id in range(1, 6):
        assert 0 in services[node_id].detected


def test_double_crash_recovered(raw_bus):
    net, services = wire(raw_bus)
    net.sim.run_until(sec(3))
    net.controllers[2].crash()
    net.controllers[3].crash()
    net.sim.run_until(sec(12))
    for node_id in (0, 1, 4, 5):
        assert set(services[node_id].detected) == {2, 3}


def test_continuous_bandwidth_cost(raw_bus):
    """OSEK pays ring traffic forever, even with zero membership events."""
    net, services = wire(raw_bus)
    net.sim.run_until(sec(5))
    nm_frames = [
        r
        for r in net.sim.trace.select(category="bus.tx")
        if r.data["mid"].mtype.name == "NM"
    ]
    assert len(nm_frames) >= 45  # ~10 per second at TTyp=100ms


def test_config_validation(raw_bus):
    net = raw_bus(2)
    with pytest.raises(ConfigurationError):
        OsekNetworkManagement(
            net.layers[0], net.timers[0], net.sim, [0, 1], t_typ=0
        )
    with pytest.raises(ConfigurationError):
        OsekNetworkManagement(
            net.layers[0], net.timers[0], net.sim, [1], t_typ=ms(100)
        )
    with pytest.raises(ConfigurationError):
        OsekNetworkManagement(
            net.layers[0],
            net.timers[0],
            net.sim,
            [0, 1],
            t_typ=ms(100),
            t_progress_factor=1.0,
        )


def test_late_joiner_enters_ring(raw_bus):
    net = raw_bus(5)
    services = {}
    for node_id, layer in net.layers.items():
        services[node_id] = OsekNetworkManagement(
            layer,
            net.timers[node_id],
            net.sim,
            ring_nodes=list(range(5)),
            t_typ=ms(100),
        )
    # Only nodes 0-3 start; node 4 joins two seconds in.
    for node_id in range(4):
        services[node_id].start()
    net.sim.run_until(sec(2))
    services[4].start()
    net.sim.run_until(sec(6))
    # The latecomer is present everywhere and forwards ring messages.
    for node_id in range(4):
        assert 4 in services[node_id].present_nodes
    assert services[4].ring_messages_sent > 0
