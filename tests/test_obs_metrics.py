"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_increments():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter().inc(-1)


def test_gauge_set_and_inc():
    gauge = Gauge()
    gauge.set(2.5)
    gauge.inc(-1.0)
    assert gauge.value == 1.5


def test_histogram_needs_boundaries():
    with pytest.raises(ValueError):
        Histogram(())


def test_histogram_boundaries_must_increase():
    with pytest.raises(ValueError):
        Histogram((10, 5))
    with pytest.raises(ValueError):
        Histogram((10, 10))


def test_histogram_bucketing():
    hist = Histogram((10, 100))
    for value in (5, 10, 50, 1000):
        hist.observe(value)
    assert hist.bucket_counts == [2, 1, 1]
    assert hist.count == 4
    assert hist.total == 1065
    assert hist.minimum == 5
    assert hist.maximum == 1000


def test_histogram_mean_and_empty_stats():
    hist = Histogram((10,))
    assert hist.mean == 0.0
    assert hist.minimum is None and hist.maximum is None
    assert hist.quantile(0.5) is None
    hist.observe(4)
    hist.observe(6)
    assert hist.mean == 5.0


def test_histogram_quantile_bucket_resolution():
    hist = Histogram((10, 100, 1000))
    for _ in range(99):
        hist.observe(5)
    hist.observe(50_000)  # lands in the overflow bucket
    assert hist.quantile(0.5) == 10
    assert hist.quantile(1.0) == 50_000  # exact max for the overflow bucket
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_registry_shares_by_name():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.counter("a").inc()
    assert registry.counter("a").value == 2


def test_registry_labels_create_distinct_metrics():
    registry = MetricsRegistry()
    registry.counter("fd.detect", node=1).inc()
    registry.counter("fd.detect", node=2).inc(5)
    assert registry.counter("fd.detect", node=1).value == 1
    assert registry.counter("fd.detect", node=2).value == 5
    assert "fd.detect{node=1}" in registry


def test_registry_label_order_is_canonical():
    registry = MetricsRegistry()
    registry.counter("x", b=2, a=1).inc()
    assert registry.counter("x", a=1, b=2).value == 1


def test_registry_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_registry_histogram_default_buckets():
    registry = MetricsRegistry()
    hist = registry.histogram("latency")
    assert hist.boundaries == DEFAULT_LATENCY_BUCKETS


def test_snapshot_shapes():
    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    registry.gauge("g").set(0.5)
    registry.histogram("h", boundaries=(10,)).observe(3)
    snap = registry.snapshot()
    assert snap["c"] == 2
    assert snap["g"] == 0.5
    assert snap["h"]["count"] == 1
    assert snap["h"]["buckets"] == {"10": 1, "+inf": 0}


def test_render_mentions_every_metric():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.gauge("g").set(1.0)
    registry.histogram("h", boundaries=(10,)).observe(3)
    text = registry.render()
    assert "c = 1" in text
    assert "g = 1" in text
    assert "h count=1" in text


def test_iteration_is_sorted_and_clear_forgets():
    registry = MetricsRegistry()
    registry.counter("b")
    registry.counter("a")
    assert [key for key, _ in registry] == ["a", "b"]
    registry.clear()
    assert "a" not in registry
