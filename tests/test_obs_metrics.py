"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_increments():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter().inc(-1)


def test_gauge_set_and_inc():
    gauge = Gauge()
    gauge.set(2.5)
    gauge.inc(-1.0)
    assert gauge.value == 1.5


def test_histogram_needs_boundaries():
    with pytest.raises(ValueError):
        Histogram(())


def test_histogram_boundaries_must_increase():
    with pytest.raises(ValueError):
        Histogram((10, 5))
    with pytest.raises(ValueError):
        Histogram((10, 10))


def test_histogram_bucketing():
    hist = Histogram((10, 100))
    for value in (5, 10, 50, 1000):
        hist.observe(value)
    assert hist.bucket_counts == [2, 1, 1]
    assert hist.count == 4
    assert hist.total == 1065
    assert hist.minimum == 5
    assert hist.maximum == 1000


def test_histogram_mean_and_empty_stats():
    hist = Histogram((10,))
    assert hist.mean == 0.0
    assert hist.minimum is None and hist.maximum is None
    assert hist.quantile(0.5) is None
    hist.observe(4)
    hist.observe(6)
    assert hist.mean == 5.0


def test_histogram_quantile_bucket_resolution():
    hist = Histogram((10, 100, 1000))
    for _ in range(99):
        hist.observe(5)
    hist.observe(50_000)  # lands in the overflow bucket
    assert hist.quantile(0.5) == 10
    assert hist.quantile(1.0) == 50_000  # exact max for the overflow bucket
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_histogram_quantile_exact_edges():
    hist = Histogram((10, 100))
    for value in (3, 7, 42):
        hist.observe(value)
    assert hist.quantile(0.0) == 3  # exact minimum, not a bucket edge
    assert hist.quantile(1.0) == 42  # exact maximum, not a bucket edge
    assert Histogram((10,)).quantile(0.0) is None
    assert Histogram((10,)).quantile(1.0) is None


def test_histogram_summary_digest():
    hist = Histogram((10, 100, 1000))
    for value in (5, 5, 50, 500):
        hist.observe(value)
    assert hist.summary() == {
        "count": 4,
        "mean": 140.0,
        "min": 5,
        "max": 500,
        "p50": 10,
        "p99": 1000,
    }


def test_histogram_summary_empty():
    summary = Histogram((10,)).summary()
    assert summary["count"] == 0
    assert summary["mean"] == 0.0
    assert summary["min"] is None and summary["max"] is None
    assert summary["p50"] is None and summary["p99"] is None


def test_registry_shares_by_name():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.counter("a").inc()
    assert registry.counter("a").value == 2


def test_registry_labels_create_distinct_metrics():
    registry = MetricsRegistry()
    registry.counter("fd.detect", node=1).inc()
    registry.counter("fd.detect", node=2).inc(5)
    assert registry.counter("fd.detect", node=1).value == 1
    assert registry.counter("fd.detect", node=2).value == 5
    assert "fd.detect{node=1}" in registry


def test_registry_label_order_is_canonical():
    registry = MetricsRegistry()
    registry.counter("x", b=2, a=1).inc()
    assert registry.counter("x", a=1, b=2).value == 1


def test_registry_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_registry_histogram_default_buckets():
    registry = MetricsRegistry()
    hist = registry.histogram("latency")
    assert hist.boundaries == DEFAULT_LATENCY_BUCKETS


def test_snapshot_shapes():
    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    registry.gauge("g").set(0.5)
    registry.histogram("h", boundaries=(10,)).observe(3)
    snap = registry.snapshot()
    assert snap["c"] == 2
    assert snap["g"] == 0.5
    assert snap["h"]["count"] == 1
    assert snap["h"]["buckets"] == {"10": 1, "+inf": 0}


def test_render_mentions_every_metric():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.gauge("g").set(1.0)
    registry.histogram("h", boundaries=(10,)).observe(3)
    text = registry.render()
    assert "c = 1" in text
    assert "g = 1" in text
    assert "h count=1" in text


def test_snapshot_and_render_order_independent_of_creation():
    """Two registries fed the same metrics in different orders produce
    identical snapshots and renderings (sorted by full key)."""
    first = MetricsRegistry()
    second = MetricsRegistry()
    for registry, order in ((first, 1), (second, -1)):
        names = ["z.counter", "a.counter", "m.gauge", "b.hist"][::order]
        for name in names:
            if name.endswith("counter"):
                registry.counter(name, node=3).inc(2)
            elif name.endswith("gauge"):
                registry.gauge(name).set(1.5)
            else:
                registry.histogram(name, boundaries=(10,)).observe(7)
    assert first.snapshot() == second.snapshot()
    assert list(first.snapshot()) == sorted(first.snapshot())
    assert first.render() == second.render()
    rendered_keys = [line.split(" ")[0] for line in first.render().splitlines()]
    assert rendered_keys == sorted(rendered_keys)


def test_iteration_is_sorted_and_clear_forgets():
    registry = MetricsRegistry()
    registry.counter("b")
    registry.counter("a")
    assert [key for key, _ in registry] == ["a", "b"]
    registry.clear()
    assert "a" not in registry
