"""Edge cases for the hierarchical timer wheel, run on both backends.

Every test drives the public :class:`~repro.sim.timers.TimerService`
interface twice — once on the seed-faithful per-alarm-event heap and once
with :data:`~repro.sim.timers.TIMER_WHEEL` on — and asserts the observable
outcome (which callbacks fire, when, and in what order) is identical. The
edge cases are exactly the ones the wheel's bucket arithmetic could get
wrong: zero-duration alarms, drifted (non-slot-aligned) deadlines,
cancellation from inside a same-instant fire batch, restarts on already
expired alarms, and deadlines far enough out to cascade through every
level and the overflow list.
"""

import pytest

import repro.sim.timers as timers_mod
from repro.sim.kernel import Simulator
from repro.sim.timers import TimerService
from repro.sim.wheel import _LEVEL_SPAN, SLOT_SHIFT

BACKENDS = ["heap", "wheel"]


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    monkeypatch.setattr(timers_mod, "TIMER_WHEEL", request.param == "wheel")
    return request.param


def make(drift=0.0):
    sim = Simulator()
    return sim, TimerService(sim, drift=drift)


def rearm(timers, alarm, duration, on_expire):
    """The failure-detector idiom: restart in place, else cancel + start."""
    if timers.restart_alarm(alarm, duration):
        return alarm
    timers.cancel_alarm(alarm)
    return timers.start_alarm(duration, on_expire)


# -- single-alarm basics on both backends -------------------------------------


def test_alarm_fires_at_exact_deadline(backend):
    sim, timers = make()
    fired = []
    timers.start_alarm(100, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [100]
    assert timers.pending_count == 0


def test_zero_duration_alarm_fires_at_current_instant(backend):
    sim, timers = make()
    fired = []
    sim.schedule_at(40, lambda: timers.start_alarm(0, lambda: fired.append(sim.now)))
    sim.run()
    assert fired == [40]


def test_zero_duration_ignores_drift(backend):
    """Drift stretches a duration; a zero duration has nothing to stretch."""
    sim, timers = make(drift=1e-4)
    fired = []
    timers.start_alarm(0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [0]


def test_drifted_deadline_fires_at_the_stretched_instant(backend):
    """drift=1e-4 (100 ppm): a 10 ms alarm fires exactly 1 us late, and the
    wheel must not round the odd deadline to slot granularity."""
    sim, timers = make(drift=1e-4)
    fired = []
    duration = 10_000_000  # 10 ms in ns ticks
    timers.start_alarm(duration, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [10_001_000]


def test_drifted_restart_matches_cancel_and_start(backend):
    def drive(use_restart):
        sim, timers = make(drift=1e-4)
        fired = []
        cb = lambda: fired.append(sim.now)
        alarm = timers.start_alarm(5_000_000, cb)
        sim.run_until(2_000_000)
        if use_restart:
            assert timers.restart_alarm(alarm, 5_000_000)
        else:
            timers.cancel_alarm(alarm)
            timers.start_alarm(5_000_000, cb)
        sim.run()
        return fired

    assert drive(True) == drive(False) == [7_000_500]


# -- cancellation edges --------------------------------------------------------


def test_cancel_before_expiry_never_fires(backend):
    sim, timers = make()
    fired = []
    alarm = timers.start_alarm(100, lambda: fired.append(1))
    timers.cancel_alarm(alarm)
    sim.run()
    assert fired == []
    assert timers.pending_count == 0


def test_cancel_during_fire_batch(backend):
    """Two alarms due at the same instant; the first callback cancels the
    second mid-batch. The cancelled alarm must not fire — on the wheel the
    batch is already collected when the first callback runs, so the fire
    loop has to re-check liveness per alarm."""
    sim, timers = make()
    fired = []
    second = [None]

    def first_cb():
        fired.append("first")
        timers.cancel_alarm(second[0])

    timers.start_alarm(100, first_cb)
    second[0] = timers.start_alarm(100, lambda: fired.append("second"))
    sim.run()
    assert fired == ["first"]
    assert timers.pending_count == 0


def test_rearm_during_fire_batch(backend):
    """A same-instant callback pushing a peer's deadline forward must defer
    that peer's expiry, not just be ignored."""
    sim, timers = make()
    fired = []
    peer = [None]

    def first_cb():
        fired.append(("first", sim.now))
        peer[0] = rearm(timers, peer[0], 50, peer_cb)

    def peer_cb():
        fired.append(("peer", sim.now))

    timers.start_alarm(100, first_cb)
    peer[0] = timers.start_alarm(100, peer_cb)
    sim.run()
    assert fired == [("first", 100), ("peer", 150)]


def test_cancel_after_fire_is_noop(backend):
    sim, timers = make()
    alarm = timers.start_alarm(10, lambda: None)
    sim.run()
    timers.cancel_alarm(alarm)  # must not raise
    assert not timers.is_pending(alarm)


# -- restart edges -------------------------------------------------------------


def test_restart_on_expired_alarm_falls_back_to_start(backend):
    """restart_alarm on a fired handle refuses (returns False) on both
    backends; the cancel+start fallback re-arms cleanly."""
    sim, timers = make()
    fired = []
    cb = lambda: fired.append(sim.now)
    alarm = timers.start_alarm(100, cb)
    sim.run()
    assert fired == [100]
    assert not timers.restart_alarm(alarm, 100)
    rearm(timers, alarm, 100, cb)
    sim.run()
    assert fired == [100, 200]


def test_restart_postpones_expiry(backend):
    sim, timers = make()
    fired = []
    alarm = timers.start_alarm(100, lambda: fired.append(sim.now))
    sim.run_until(60)
    alarm = rearm(timers, alarm, 100, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [160]
    assert timers.pending_count == 0


def test_restart_to_earlier_deadline(backend):
    """Shrinking the remaining time must take effect on both backends (the
    heap fast path refuses and falls back; the wheel relinks in place)."""
    sim, timers = make()
    fired = []
    alarm = timers.start_alarm(1_000_000, lambda: fired.append(sim.now))
    alarm = rearm(timers, alarm, 10, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [10]


def test_repeated_surveillance_rearm(backend):
    """The failure-detector pattern: rearm on every observed frame. Only
    the final arming fires, exactly one duration after the last rearm."""
    sim, timers = make()
    fired = []
    cb = lambda: fired.append(sim.now)
    alarm = timers.start_alarm(100, cb)
    for at in range(10, 500, 10):
        sim.run_until(at)
        alarm = rearm(timers, alarm, 100, cb)
    sim.run()
    assert fired == [590]
    assert timers.pending_count == 0


def test_restart_within_one_wheel_slot(backend):
    """Rearms smaller than a level-0 slot span stay in the same bucket —
    the wheel's same-bucket fast path — and must still fire at the exact
    new deadline."""
    slot = 1 << SLOT_SHIFT
    sim, timers = make()
    fired = []
    cb = lambda: fired.append(sim.now)
    alarm = timers.start_alarm(slot // 2, cb)
    sim.run_until(slot // 8)
    alarm = rearm(timers, alarm, slot // 2, cb)
    sim.run()
    assert fired == [slot // 8 + slot // 2]


# -- deterministic fire order --------------------------------------------------


def test_same_deadline_fires_in_arm_order(backend):
    sim, timers = make()
    fired = []
    for label in "abcde":
        timers.start_alarm(100, lambda l=label: fired.append(l))
    sim.run()
    assert fired == list("abcde")


def test_same_deadline_order_survives_restart(backend):
    """An alarm restarted onto a peer's deadline fires after that peer:
    rearming consumes a fresh arm-order sequence number on both backends."""

    def drive(use_restart):
        sim, timers = make()
        fired = []
        a = timers.start_alarm(50, lambda: fired.append("a"))
        timers.start_alarm(100, lambda: fired.append("b"))
        if use_restart:
            a = rearm(timers, a, 100, lambda: fired.append("a"))
        else:
            timers.cancel_alarm(a)
            timers.start_alarm(100, lambda: fired.append("a"))
        sim.run()
        return fired

    assert drive(True) == drive(False) == ["b", "a"]


# -- long horizons: cascades and overflow -------------------------------------


def test_cascade_through_every_level(backend):
    """One alarm per wheel level (plus a short one), armed together: each
    must fire at its exact deadline after cascading down."""
    sim, timers = make()
    fired = []
    deadlines = [100] + [span - 3 for span in _LEVEL_SPAN]
    for deadline in deadlines:
        timers.start_alarm(deadline, lambda d=deadline: fired.append((d, sim.now)))
    sim.run()
    assert fired == [(d, d) for d in deadlines]


def test_overflow_deadline_fires_exactly(backend):
    """A deadline beyond the top level's span parks in the overflow list
    and must still fire at the precise tick."""
    sim, timers = make()
    fired = []
    deadline = _LEVEL_SPAN[-1] * 2 + 12345
    timers.start_alarm(deadline, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [deadline]


def test_cancel_overflow_alarm(backend):
    sim, timers = make()
    fired = []
    far = timers.start_alarm(_LEVEL_SPAN[-1] * 2, lambda: fired.append("far"))
    timers.start_alarm(100, lambda: fired.append("near"))
    timers.cancel_alarm(far)
    sim.run()
    assert fired == ["near"]
    assert timers.pending_count == 0


# -- backend equivalence on a mixed script ------------------------------------


def _scripted_outcome():
    """A deterministic mix of starts, rearms, cancels and drifted services;
    returns every firing as (label, instant)."""
    sim = Simulator()
    exact = TimerService(sim)
    drifty = TimerService(sim, drift=1e-4)
    fired = []
    alarms = {}

    def cb(label):
        return lambda: fired.append((label, sim.now))

    slot = 1 << SLOT_SHIFT
    alarms["a"] = exact.start_alarm(slot * 3, cb("a"))
    alarms["b"] = exact.start_alarm(slot * 3, cb("b"))
    alarms["c"] = drifty.start_alarm(10_000_000, cb("c"))
    alarms["d"] = exact.start_alarm(_LEVEL_SPAN[1] + 7, cb("d"))
    sim.run_until(slot)
    alarms["a"] = rearm(exact, alarms["a"], slot * 3, cb("a"))
    exact.cancel_alarm(alarms["b"])
    alarms["e"] = exact.start_alarm(0, cb("e"))
    sim.run_until(slot * 2)
    alarms["c"] = rearm(drifty, alarms["c"], 10_000_000, cb("c"))
    sim.run()
    return fired


def test_backends_agree_on_scripted_schedule(monkeypatch):
    monkeypatch.setattr(timers_mod, "TIMER_WHEEL", False)
    heap_outcome = _scripted_outcome()
    monkeypatch.setattr(timers_mod, "TIMER_WHEEL", True)
    wheel_outcome = _scripted_outcome()
    assert heap_outcome == wheel_outcome
    assert heap_outcome  # the script actually fired something


def test_wheel_is_shared_per_simulator(monkeypatch):
    monkeypatch.setattr(timers_mod, "TIMER_WHEEL", True)
    sim = Simulator()
    first = TimerService(sim)
    second = TimerService(sim)
    assert first._wheel is second._wheel is sim.timer_wheel()


def test_wheel_keeps_kernel_heap_small(monkeypatch):
    """The wheel's whole point: N live alarms, one kernel cursor event."""
    monkeypatch.setattr(timers_mod, "TIMER_WHEEL", True)
    sim, timers = make()
    for _ in range(500):
        timers.start_alarm(100, lambda: None)
    assert timers.pending_count == 500
    assert len(sim._queue) < 5
    sim.run()
    assert timers.pending_count == 0
