"""Unit tests for the fault injector."""

import random

import pytest

from repro.can.errormodel import FaultInjector, FaultKind, FaultVerdict
from repro.can.frame import data_frame
from repro.can.identifiers import MessageId, MessageType
from repro.errors import ConfigurationError

FRAME = data_frame(MessageId(MessageType.DATA, node=1), b"x")


def test_default_verdict_is_ok():
    injector = FaultInjector()
    verdict = injector.verdict(FRAME, [1], [1, 2, 3], 0)
    assert verdict.kind is FaultKind.NONE


def test_scripted_fault_on_transmission_index():
    injector = FaultInjector()
    injector.fault_on_transmission(2, FaultKind.CONSISTENT_OMISSION)
    assert injector.verdict(FRAME, [1], [2], 0).kind is FaultKind.NONE
    assert injector.verdict(FRAME, [1], [2], 2).kind is FaultKind.CONSISTENT_OMISSION


def test_scripted_fault_fires_once():
    injector = FaultInjector()
    injector.fault_on_transmission(0, FaultKind.CONSISTENT_OMISSION)
    assert injector.verdict(FRAME, [1], [2], 0).kind is FaultKind.CONSISTENT_OMISSION
    assert injector.verdict(FRAME, [1], [2], 0).kind is FaultKind.NONE


def test_fault_on_frame_predicate():
    injector = FaultInjector()
    injector.fault_on_frame(
        lambda f: f.mid.mtype is MessageType.DATA,
        FaultKind.INCONSISTENT_OMISSION,
        accepting=[4],
    )
    verdict = injector.verdict(FRAME, [1], [2, 4], 0)
    assert verdict.kind is FaultKind.INCONSISTENT_OMISSION
    assert verdict.accepting == {4}


def test_fault_on_frame_count():
    injector = FaultInjector()
    injector.fault_on_frame(
        lambda f: True, FaultKind.CONSISTENT_OMISSION, count=2
    )
    kinds = [injector.verdict(FRAME, [1], [2], i).kind for i in range(3)]
    assert kinds == [
        FaultKind.CONSISTENT_OMISSION,
        FaultKind.CONSISTENT_OMISSION,
        FaultKind.NONE,
    ]


def test_crash_sender_flag_propagates():
    injector = FaultInjector()
    injector.fault_on_transmission(
        0, FaultKind.INCONSISTENT_OMISSION, accepting=[2], crash_sender=True
    )
    assert injector.verdict(FRAME, [1], [2], 0).crash_sender


def test_injection_counters():
    injector = FaultInjector()
    injector.fault_on_transmission(0, FaultKind.CONSISTENT_OMISSION)
    injector.fault_on_transmission(1, FaultKind.INCONSISTENT_OMISSION, accepting=[2])
    injector.verdict(FRAME, [1], [2], 0)
    injector.verdict(FRAME, [1], [2], 1)
    assert injector.omissions_injected == 2
    assert injector.inconsistent_injected == 1


def test_omission_degree_bound_enforced():
    injector = FaultInjector(omission_degree=1)
    injector.fault_on_transmission(0, FaultKind.CONSISTENT_OMISSION)
    injector.fault_on_transmission(1, FaultKind.CONSISTENT_OMISSION)
    injector.verdict(FRAME, [1], [2], 0)
    with pytest.raises(ConfigurationError):
        injector.verdict(FRAME, [1], [2], 1)


def test_inconsistent_degree_bound_enforced():
    injector = FaultInjector(inconsistent_degree=0)
    injector.fault_on_transmission(0, FaultKind.INCONSISTENT_OMISSION, accepting=[2])
    with pytest.raises(ConfigurationError):
        injector.verdict(FRAME, [1], [2], 0)


def test_stochastic_requires_rng():
    with pytest.raises(ConfigurationError):
        FaultInjector(consistent_probability=0.1)


def test_probabilities_validated():
    rng = random.Random(0)
    with pytest.raises(ConfigurationError):
        FaultInjector(rng=rng, consistent_probability=0.7, inconsistent_probability=0.5)
    with pytest.raises(ConfigurationError):
        FaultInjector(rng=rng, consistent_probability=-0.1)


def test_stochastic_faults_eventually_fire():
    rng = random.Random(1)
    injector = FaultInjector(rng=rng, consistent_probability=0.5)
    kinds = {injector.verdict(FRAME, [1], [2], i).kind for i in range(50)}
    assert FaultKind.CONSISTENT_OMISSION in kinds
    assert FaultKind.NONE in kinds


def test_stochastic_inconsistent_subsets_exclude_senders():
    rng = random.Random(2)
    injector = FaultInjector(rng=rng, inconsistent_probability=0.8)
    for i in range(50):
        verdict = injector.verdict(FRAME, [1], [1, 2, 3, 4], i)
        if verdict.kind is FaultKind.INCONSISTENT_OMISSION:
            assert verdict.accepting
            assert 1 not in verdict.accepting


def test_spent_scripted_faults_are_evicted():
    injector = FaultInjector()
    injector.fault_on_transmission(0, FaultKind.CONSISTENT_OMISSION)
    injector.fault_on_frame(lambda f: True, FaultKind.CONSISTENT_OMISSION, count=2)
    assert len(injector._scheduled) == 2
    injector.verdict(FRAME, [1], [2], 0)  # tx-index fault fires and drops
    assert len(injector._scheduled) == 1
    injector.verdict(FRAME, [1], [2], 1)
    assert len(injector._scheduled) == 1  # one firing left on the predicate
    injector.verdict(FRAME, [1], [2], 2)
    assert injector._scheduled == []  # nothing left to re-scan, ever
    assert injector.omissions_injected == 3


def test_unspent_scripted_faults_are_kept():
    injector = FaultInjector()
    injector.fault_on_frame(lambda f: False, FaultKind.CONSISTENT_OMISSION)
    injector.fault_on_transmission(9, FaultKind.CONSISTENT_OMISSION)
    injector.verdict(FRAME, [1], [2], 0)
    assert len(injector._scheduled) == 2


def test_inconsistent_band_falls_back_to_consistent_omission():
    # No receiver other than the sender: an inconsistent omission cannot
    # form, but the draw must still inject (as a consistent omission)
    # instead of silently returning OK below the configured rate.
    rng = random.Random(3)
    injector = FaultInjector(rng=rng, inconsistent_probability=0.4)
    draws = 1000
    kinds = [injector.verdict(FRAME, [1], [1], i).kind for i in range(draws)]
    assert FaultKind.INCONSISTENT_OMISSION not in kinds
    assert injector.inconsistent_injected == 0
    rate = injector.omissions_injected / draws
    assert abs(rate - 0.4) < 0.05, rate


def test_injected_rate_matches_configured_rate():
    rng = random.Random(11)
    p_consistent, p_inconsistent = 0.15, 0.10
    injector = FaultInjector(
        rng=rng,
        consistent_probability=p_consistent,
        inconsistent_probability=p_inconsistent,
    )
    draws = 4000
    for i in range(draws):
        injector.verdict(FRAME, [1], [1, 2, 3, 4], i)
    total_rate = injector.omissions_injected / draws
    inconsistent_rate = injector.inconsistent_injected / draws
    assert abs(total_rate - (p_consistent + p_inconsistent)) < 0.02, total_rate
    assert abs(inconsistent_rate - p_inconsistent) < 0.02, inconsistent_rate


def test_stochastic_determinism_per_seed():
    def run(seed):
        injector = FaultInjector(
            rng=random.Random(seed),
            consistent_probability=0.2,
            inconsistent_probability=0.2,
        )
        return [injector.verdict(FRAME, [1], [2, 3], i).kind for i in range(30)]

    assert run(5) == run(5)
    assert run(5) != run(6)
