"""Golden-trace regression test.

The simulation is fully deterministic; this test pins the protocol-level
event sequence of one canonical scenario so that *any* behavioural change —
an extra frame, a shifted notification, a different view order — shows up
as a diff, not as a silent drift. Update the golden file deliberately when
a change is intended:

    python -m tests.update_golden   # or just copy the printed actual trace
"""

import pathlib

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import ms
from repro.sim.timeline import timeline

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "canonical_scenario.txt"

CONFIG = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))


def canonical_scenario_lines():
    net = CanelyNetwork(node_count=4, config=CONFIG)
    net.join_all()
    net.run_for(ms(300))
    net.node(3).crash()
    net.run_for(ms(100))
    net.node(1).leave()
    net.run_for(ms(100))
    return timeline(net.sim.trace)


def test_canonical_scenario_matches_golden_trace():
    actual = canonical_scenario_lines()
    if not GOLDEN_PATH.exists():
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text("\n".join(actual) + "\n")
    golden = GOLDEN_PATH.read_text().splitlines()
    assert actual == golden, (
        "the protocol-level event sequence changed; if intended, delete "
        f"{GOLDEN_PATH} and rerun to regenerate"
    )


def test_golden_trace_has_expected_shape():
    lines = canonical_scenario_lines()
    text = "\n".join(lines)
    assert "JOIN" in text
    assert "RHA" in text
    assert "CRASHED" in text
    assert "FDA" in text
    assert "LEAVE" in text
