"""Unit tests for RELCAN (lazy two-phase reliable broadcast)."""

from repro.can.errormodel import FaultInjector, FaultKind
from repro.can.identifiers import MessageType
from repro.llc.relcan import Relcan
from repro.sim.clock import ms


def wire(net, timeout=ms(5)):
    protocols = {}
    delivered = {}
    for node_id, layer in net.layers.items():
        protocol = Relcan(layer, net.timers[node_id], confirm_timeout=timeout)
        log = []
        protocol.on_deliver(lambda s, r, d, log=log: log.append((s, r, d)))
        protocols[node_id] = protocol
        delivered[node_id] = log
    return protocols, delivered


def test_failure_free_delivery_on_confirm(raw_bus):
    net = raw_bus(4)
    protocols, delivered = wire(net)
    ref = protocols[0].broadcast(b"msg")
    net.sim.run_until(ms(1))
    for node_id in net.layers:
        assert delivered[node_id] == [(0, ref, b"msg")]


def test_failure_free_cost_is_message_plus_confirm(raw_bus):
    net = raw_bus(4)
    protocols, _ = wire(net)
    protocols[0].broadcast(b"msg")
    net.sim.run_until(ms(1))
    assert net.bus.stats.physical_frames == 2  # data + confirm (remote)


def test_delivery_exactly_once(raw_bus):
    net = raw_bus(3)
    protocols, delivered = wire(net)
    protocols[0].broadcast(b"a")
    protocols[1].broadcast(b"b")
    net.sim.run_until(ms(20))
    for log in delivered.values():
        assert len(log) == 2


def test_sender_crash_triggers_diffusion_fallback(raw_bus):
    injector = FaultInjector()
    injector.fault_on_frame(
        lambda f: f.mid.mtype is MessageType.DATA,
        FaultKind.INCONSISTENT_OMISSION,
        accepting=[2],
        crash_sender=True,
    )
    net = raw_bus(4, injector=injector)
    protocols, delivered = wire(net)
    ref = protocols[0].broadcast(b"lastword")
    net.sim.run_until(ms(20))
    # No confirm ever arrives; node 2 times out, diffuses, everyone delivers.
    for node_id in (1, 2, 3):
        assert delivered[node_id] == [(0, ref, b"lastword")]


def test_interleaved_broadcasts_keep_identities(raw_bus):
    net = raw_bus(3)
    protocols, delivered = wire(net)
    protocols[0].broadcast(b"from-0")
    protocols[2].broadcast(b"from-2")
    net.sim.run_until(ms(20))
    for log in delivered.values():
        senders = {s for s, _, _ in log}
        assert senders == {0, 2}
