"""Edge-case coverage across modules: the paths the happy tests miss."""

import pytest

from repro.can.bus import CanBus
from repro.can.controller import CanController, ControllerState
from repro.can.errormodel import FaultInjector, FaultKind
from repro.can.frame import data_frame, remote_frame
from repro.can.identifiers import MessageId, MessageType
from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.errors import BusError
from repro.sim.clock import ms, us
from repro.sim.kernel import Simulator

CONFIG = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))


# -- bus -----------------------------------------------------------------------


def test_error_passive_sender_pays_suspend_penalty():
    injector = FaultInjector()
    injector.fault_on_frame(lambda f: True, FaultKind.CONSISTENT_OMISSION, count=17)
    sim = Simulator()
    bus = CanBus(sim, injector=injector)
    sender = CanController(0)
    receiver = CanController(1)
    bus.attach(sender)
    bus.attach(receiver)
    sender.submit(data_frame(MessageId(MessageType.DATA, node=0), b""))
    sim.run()
    # 16 errors push TEC past 127 (error-passive); the 17th failed attempt
    # is charged the suspend-transmission overhead.
    assert sender.tec > 127 or sender.state is ControllerState.ERROR_PASSIVE
    # The frame still got through on the 18th attempt.
    assert bus.stats.error_frames == 17


def test_identical_data_frames_cluster_from_two_nodes():
    """Bit-identical data frames may legally co-transmit (RHA relies on
    the remote-frame case; data frames share the wired-AND physics)."""
    sim = Simulator()
    bus = CanBus(sim)
    nodes = [CanController(i) for i in range(3)]
    for node in nodes:
        bus.attach(node)
    frame = data_frame(MessageId(MessageType.RHA, node=7, ref=1), b"\x01")
    nodes[0].submit(frame)
    nodes[1].submit(frame)
    sim.run()
    assert bus.stats.physical_frames == 1
    assert bus.stats.clustered_requests == 1


def test_utilization_with_explicit_window():
    sim = Simulator()
    bus = CanBus(sim)
    a, b = CanController(0), CanController(1)
    bus.attach(a)
    bus.attach(b)
    a.submit(data_frame(MessageId(MessageType.DATA, node=0), b""))
    sim.run()
    window = 2 * sim.now
    assert bus.utilization(window) == pytest.approx(bus.utilization() / 2)


def test_utilization_zero_before_time_passes():
    sim = Simulator()
    bus = CanBus(sim)
    assert bus.utilization() == 0.0


# -- protocols ----------------------------------------------------------------------


def test_group_announcement_with_malformed_payload_ignored():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    # Forge a truncated GROUP frame straight at the layer.
    net.node(0).layer.data_req(
        MessageId(MessageType.GROUP, node=0, ref=0), b"\x01"
    )
    net.run_for(ms(10))
    assert net.node(1).groups.known_groups == []


def test_fd_stop_unmonitored_node_is_noop():
    net = CanelyNetwork(node_count=2, config=CONFIG)
    net.node(0).detector.stop(15)  # never started


def test_rha_reset_mid_execution():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    node = net.node(0)
    node.state.joining = node.state.joining.add(9)
    node.rha.request()
    assert node.rha.running
    node.rha.reset()
    assert not node.rha.running
    # The network as a whole still converges afterwards.
    net.run_for(ms(300))
    assert net.views_agree()


def test_membership_halt_stops_cycling():
    net = CanelyNetwork(node_count=2, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    node = net.node(1)
    round_before = node.view().round_index
    node.membership.halt()
    net.run_for(ms(300))
    assert node.view().round_index == round_before


def test_injector_predicate_and_index_must_each_match():
    injector = FaultInjector()
    frame = data_frame(MessageId(MessageType.DATA, node=0), b"")
    injector._scheduled.clear()
    injector.fault_on_transmission(5, FaultKind.CONSISTENT_OMISSION)
    # Index 4 does not match.
    assert injector.verdict(frame, [0], [1], 4).kind is FaultKind.NONE
    assert (
        injector.verdict(frame, [0], [1], 5).kind
        is FaultKind.CONSISTENT_OMISSION
    )


def test_clock_sync_round_ref_wraps():
    """Round indices are carried modulo 2^16; the service must keep
    synchronizing across the wrap."""
    import random

    from repro.services.clocksync import ClockSyncService, VirtualClock

    net = CanelyNetwork(node_count=2, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    services = []
    for node in net.nodes.values():
        service = ClockSyncService(
            node.layer,
            node.timers,
            net.sim,
            VirtualClock(),
            resync_period=ms(10),
            reception_jitter_rng=random.Random(1),
        )
        service._round = 65530  # close to the 16-bit ref wrap
        service._synced_round = 65529
        services.append(service)
        service.start()
    net.run_for(ms(100))
    assert all(service.resyncs >= 1 for service in services)


def test_cli_run_reports_failure_exit_code(tmp_path):
    """A scenario whose views never agree exits nonzero."""
    import json

    from repro.__main__ import main

    # One node crashes immediately and the run ends before detection: the
    # agreed view still forms, so craft disagreement instead via a paused
    # network: zero-duration runs cannot disagree, so use a crash plus a
    # duration too short for the notification.
    scenario = {
        "nodes": 3,
        "config": {"tm_ms": 50, "thb_ms": 10},
        "events": [{"at_ms": 10, "action": "crash", "node": 2}],
        "duration_ms": 1000,
    }
    path = tmp_path / "ok.json"
    path.write_text(json.dumps(scenario))
    assert main(["run", str(path)]) == 0  # this one agrees


def test_node_set_bool_and_iteration_order():
    from repro.util.sets import NodeSet

    node_set = NodeSet([5, 1, 9], capacity=16)
    assert list(node_set) == [1, 5, 9]  # always ascending
    assert bool(node_set)
    assert not bool(NodeSet.empty(16))
