"""Tests for the parallel, crash-tolerant campaign engine.

The custom scenario functions live at module level so they survive both
fork- and spawn-based multiprocessing; the deliberately hostile ones
(``os._exit``, long sleeps) are only ever run with ``workers >= 1`` so the
test process itself stays alive.
"""

import json
import os
import time

import pytest

from repro.campaign import (
    VERDICT_ERROR,
    VERDICT_OK,
    VERDICT_TIMEOUT,
    VERDICT_WORKER_CRASH,
    CampaignReport,
    CampaignSpec,
    ScenarioResult,
    load_checkpoint,
    run_campaign,
    run_scenario,
)
from repro.errors import CampaignError

#: A real but tiny campaign: 4-5 node populations, one crash each.
TINY = CampaignSpec(
    scenarios=3,
    seed=3,
    node_min=4,
    node_max=5,
    crash_min=1,
    crash_max=1,
    crash_window_ms=30.0,
    run_ms=250.0,
)


def _fingerprint(results):
    return [
        (r.index, r.seed, r.verdict, r.nodes, r.crashes, r.latencies, r.missed)
        for r in results
    ]


def quick(spec, index):
    """A fast fake scenario whose result encodes its index."""
    return ScenarioResult(
        index=index,
        seed=spec.scenario_seed(index),
        verdict=VERDICT_OK,
        latencies=[index + 1],
    )


def sleepy_first(spec, index):
    if index == 0:
        time.sleep(30)
    return quick(spec, index)


def always_crash(spec, index):
    os._exit(3)


def crash_until_flag(spec, index):
    flag = os.environ["CAMPAIGN_TEST_FLAG"]
    if not os.path.exists(flag):
        with open(flag, "w"):
            pass
        os._exit(1)
    return quick(spec, index)


def recording(spec, index):
    with open(os.environ["CAMPAIGN_TEST_LOG"], "a") as handle:
        handle.write(f"{index}\n")
    return quick(spec, index)


def raising(spec, index):
    raise ValueError("scripted failure")


# -- determinism ---------------------------------------------------------------


def test_scenario_is_deterministic_per_seed():
    first = run_scenario(TINY, 1)
    second = run_scenario(TINY, 1)
    assert _fingerprint([first]) == _fingerprint([second])
    assert first.verdict == VERDICT_OK
    assert first.metrics == second.metrics


def test_results_independent_of_worker_count():
    inline = run_campaign(TINY, workers=0)
    parallel = run_campaign(TINY, workers=2)
    assert _fingerprint(inline) == _fingerprint(parallel)
    assert [r.index for r in parallel] == [0, 1, 2]
    assert all(r.verdict == VERDICT_OK for r in parallel)


def test_campaign_report_aggregates():
    results = run_campaign(TINY, workers=0)
    report = CampaignReport(TINY, results)
    assert report.success
    assert report.missed == 0
    assert len(report.latencies) == sum(len(r.latencies) for r in results)
    assert max(report.latencies) <= report.notification_bound
    assert "completed ok" in report.render()
    assert json.loads(report.to_json())["verdicts"][VERDICT_OK] == 3


# -- checkpointing and resume --------------------------------------------------


def test_checkpoint_resume_skips_completed(tmp_path, monkeypatch):
    checkpoint = str(tmp_path / "campaign.jsonl")
    log = tmp_path / "ran.log"
    monkeypatch.setenv("CAMPAIGN_TEST_LOG", str(log))

    head = CampaignSpec(scenarios=2, seed=5)
    run_campaign(head, workers=0, checkpoint=checkpoint, scenario_fn=recording)
    assert log.read_text().splitlines() == ["0", "1"]

    full = CampaignSpec(scenarios=4, seed=5)
    results = run_campaign(
        full,
        workers=0,
        checkpoint=checkpoint,
        resume=True,
        scenario_fn=recording,
    )
    # Only the two missing scenarios ran; all four results came back.
    assert log.read_text().splitlines() == ["0", "1", "2", "3"]
    assert [r.index for r in results] == [0, 1, 2, 3]
    assert len(load_checkpoint(checkpoint, full)) == 4


def test_resume_never_reruns_finished_seeds(tmp_path):
    checkpoint = str(tmp_path / "campaign.jsonl")
    spec = CampaignSpec(scenarios=3, seed=8)
    first = run_campaign(spec, workers=0, checkpoint=checkpoint, scenario_fn=quick)
    # If resume reran anything the always-crashing worker would report it.
    resumed = run_campaign(
        spec,
        workers=2,
        retries=0,
        checkpoint=checkpoint,
        resume=True,
        scenario_fn=always_crash,
    )
    assert _fingerprint(resumed) == _fingerprint(first)
    assert all(r.verdict == VERDICT_OK for r in resumed)


def test_checkpoint_tolerates_truncated_and_stale_lines(tmp_path):
    spec = CampaignSpec(scenarios=4, seed=5)
    good = ScenarioResult(index=1, seed=spec.scenario_seed(1), verdict=VERDICT_OK)
    stale = ScenarioResult(index=2, seed=999, verdict=VERDICT_OK)
    out_of_range = ScenarioResult(index=9, seed=spec.scenario_seed(3), verdict=VERDICT_OK)
    path = tmp_path / "campaign.jsonl"
    path.write_text(
        json.dumps(good.to_dict())
        + "\n"
        + json.dumps(stale.to_dict())
        + "\n"
        + json.dumps(out_of_range.to_dict())
        + "\n"
        + '{"index": 3, "seed'  # a write cut off mid-line by a kill
    )
    completed = load_checkpoint(str(path), spec)
    assert list(completed) == [1]


def test_load_checkpoint_missing_file_is_empty(tmp_path):
    assert load_checkpoint(str(tmp_path / "nope.jsonl"), TINY) == {}


# -- worker failure handling ---------------------------------------------------


def test_worker_timeout_retried_then_reported():
    spec = CampaignSpec(scenarios=2, seed=1)
    results = run_campaign(
        spec, workers=2, timeout=1.0, retries=1, scenario_fn=sleepy_first
    )
    by_index = {r.index: r for r in results}
    assert by_index[0].verdict == VERDICT_TIMEOUT
    assert by_index[0].attempts == 2
    assert "budget" in by_index[0].detail
    assert by_index[1].verdict == VERDICT_OK


def test_worker_crash_retried_then_reported():
    spec = CampaignSpec(scenarios=1, seed=1)
    results = run_campaign(
        spec, workers=1, retries=2, scenario_fn=always_crash
    )
    assert results[0].verdict == VERDICT_WORKER_CRASH
    assert results[0].attempts == 3
    assert "exited with code 3" in results[0].detail


def test_worker_crash_then_success_on_retry(tmp_path, monkeypatch):
    monkeypatch.setenv("CAMPAIGN_TEST_FLAG", str(tmp_path / "flag"))
    spec = CampaignSpec(scenarios=1, seed=1)
    results = run_campaign(
        spec, workers=1, retries=1, scenario_fn=crash_until_flag
    )
    assert results[0].verdict == VERDICT_OK
    assert results[0].attempts == 2


def test_scenario_exception_reported_not_retried():
    spec = CampaignSpec(scenarios=2, seed=1)
    results = run_campaign(spec, workers=2, scenario_fn=raising)
    for result in results:
        assert result.verdict == VERDICT_ERROR
        assert result.attempts == 1
        assert "ValueError: scripted failure" in result.detail


def test_progress_called_once_per_scenario():
    seen = []
    run_campaign(
        CampaignSpec(scenarios=3, seed=2),
        workers=0,
        scenario_fn=quick,
        progress=seen.append,
    )
    assert sorted(r.index for r in seen) == [0, 1, 2]


# -- argument validation -------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"workers": -1},
        {"timeout": 0},
        {"retries": -1},
        {"resume": True},  # resume without a checkpoint path
    ],
)
def test_run_campaign_validates_arguments(kwargs):
    with pytest.raises(CampaignError):
        run_campaign(TINY, scenario_fn=quick, **kwargs)


# -- result-loss races and checkpoint hygiene ----------------------------------


def post_then_hang(spec, index):
    """Return a result but leave a non-daemon thread keeping the worker
    process alive well past its put() — the lingering-child shape."""
    import threading

    threading.Thread(target=time.sleep, args=(20,)).start()
    return quick(spec, index)


def test_result_posted_then_timeout_is_kept():
    """A result posted just before the deadline survives the reaper.

    This is the race the timeout branch used to lose: the worker finishes
    and put()s its result, then the wall-clock check fires before the
    exit is observed. The reaper must drain the queue before (and after)
    terminating, exactly like the crash branch always has.
    """
    from repro.campaign.executors import LocalPoolExecutor, _Job, _context

    ctx = _context()
    queue = ctx.SimpleQueue()
    queue.put(quick(TINY, 0).to_dict())
    process = ctx.Process(target=time.sleep, args=(30,))
    process.start()
    job = _Job(
        index=0,
        process=process,
        queue=queue,
        started=time.monotonic() - 100.0,
        attempt=1,
    )
    collected, gave_up = [], []
    LocalPoolExecutor._reap_timed_out(
        job,
        timeout=1.0,
        retries=1,
        collect=lambda j, raw: collected.append(raw),
        give_up=lambda j, verdict, detail: gave_up.append(verdict),
    )
    assert not process.is_alive()
    assert gave_up == []
    assert [raw["index"] for raw in collected] == [0]
    assert collected[0]["verdict"] == VERDICT_OK


def test_timed_out_worker_without_result_still_times_out():
    from repro.campaign.executors import LocalPoolExecutor, _Job, _context

    ctx = _context()
    queue = ctx.SimpleQueue()
    process = ctx.Process(target=time.sleep, args=(30,))
    process.start()
    job = _Job(
        index=0,
        process=process,
        queue=queue,
        started=time.monotonic() - 100.0,
        attempt=2,
    )
    collected, gave_up = [], []
    LocalPoolExecutor._reap_timed_out(
        job,
        timeout=1.0,
        retries=1,
        collect=lambda j, raw: collected.append(raw),
        give_up=lambda j, verdict, detail: gave_up.append(verdict),
    )
    assert not process.is_alive()
    assert collected == []
    assert gave_up == [VERDICT_TIMEOUT]


def test_lingering_worker_does_not_stall_campaign():
    spec = CampaignSpec(scenarios=2, seed=4)
    started = time.monotonic()
    results = run_campaign(
        spec, workers=2, timeout=60.0, scenario_fn=post_then_hang
    )
    elapsed = time.monotonic() - started
    assert all(r.verdict == VERDICT_OK for r in results)
    # The hung children sleep 20s each; the bounded post-collect join must
    # terminate them instead of waiting that out.
    assert elapsed < 15.0


def test_non_resume_rerun_truncates_stale_checkpoint(tmp_path):
    """Rerunning into an existing checkpoint without resume starts clean.

    The old appender left the first run's lines in place, so the file
    held duplicates — and a later ``resume=True`` would trust whichever
    stale line it read last.
    """
    checkpoint = str(tmp_path / "campaign.jsonl")
    spec = CampaignSpec(scenarios=3, seed=6)
    run_campaign(spec, workers=0, checkpoint=checkpoint, scenario_fn=quick)
    # A stale shard from an earlier distributed run must also go.
    stale_shard = tmp_path / "campaign.0007.jsonl"
    stale_shard.write_text('{"index": 0, "seed": 0, "verdict": "ok"}\n')

    results = run_campaign(
        spec, workers=0, checkpoint=checkpoint, scenario_fn=quick
    )
    lines = [
        json.loads(line)
        for line in open(checkpoint)
        if line.strip()
    ]
    assert len(lines) == spec.scenarios  # no duplicates from run one
    assert sorted(line["index"] for line in lines) == [0, 1, 2]
    assert not stale_shard.exists()
    assert _fingerprint(results) == _fingerprint(
        run_campaign(spec, workers=0, scenario_fn=quick)
    )


def test_incomplete_executor_raises_with_missing_indexes():
    """An executor that loses scenarios cannot return a silently short
    result list — the engine names every missing index."""
    from repro.campaign import Executor

    class DropsEverything(Executor):
        def execute(
            self, spec, pending, *, timeout, retries, scenario_fn, finish
        ):
            index = pending.popleft()  # finish only the first
            finish(scenario_fn(spec, index))

    with pytest.raises(CampaignError) as excinfo:
        run_campaign(TINY, scenario_fn=quick, executor=DropsEverything())
    message = str(excinfo.value)
    assert "campaign incomplete" in message
    assert "DropsEverything" in message
    assert "1, 2" in message


def test_prior_results_skip_execution_and_are_checkpointed(tmp_path):
    checkpoint = str(tmp_path / "campaign.jsonl")
    spec = CampaignSpec(scenarios=3, seed=9)
    known = quick(spec, 1)
    seen = []

    def observing(inner_spec, index):
        seen.append(index)
        return quick(inner_spec, index)

    results = run_campaign(
        spec,
        workers=0,
        checkpoint=checkpoint,
        scenario_fn=observing,
        prior_results={1: known},
    )
    assert seen == [0, 2]  # index 1 answered from prior_results
    assert [r.index for r in results] == [0, 1, 2]
    assert len(load_checkpoint(checkpoint, spec)) == 3
