"""Unit and integration tests for the causal span tracer."""

import pytest

from repro.core.stack import CanelyNetwork
from repro.obs.spans import (
    NULL_TRACER,
    SpanTracer,
    render_span_tree,
    span_to_dict,
)
from repro.sim.clock import ms


# -- tracer unit tests ----------------------------------------------------------------


def test_begin_end_records_interval_and_attrs():
    tracer = SpanTracer(clock=lambda: 0)
    span_id = tracer.begin("can.tx", "bus", node=3, at=10, mid="X")
    tracer.end(span_id, at=25, kind="none")
    span = tracer.get(span_id)
    assert (span.start, span.end, span.duration) == (10, 25, 15)
    assert span.attrs == {"mid": "X", "kind": "none"}
    assert span.node == 3 and span.category == "bus"


def test_end_is_idempotent_and_none_safe():
    tracer = SpanTracer(clock=lambda: 0)
    span_id = tracer.begin("a", "x", at=1)
    tracer.end(span_id, at=2)
    tracer.end(span_id, at=99)  # double-end: no-op
    tracer.end(None, at=99)  # None handle: no-op
    assert tracer.get(span_id).end == 2


def test_context_stack_supplies_parent():
    tracer = SpanTracer(clock=lambda: 0)
    root = tracer.begin("root", "x", at=0)
    assert tracer.current is None
    tracer.push(root)
    child = tracer.begin("child", "x", at=1)
    tracer.pop()
    orphan = tracer.begin("orphan", "x", at=2)
    assert tracer.get(child).parent == root
    assert tracer.get(orphan).parent is None


def test_explicit_parent_wins_over_stack():
    tracer = SpanTracer(clock=lambda: 0)
    a = tracer.begin("a", "x", at=0)
    b = tracer.begin("b", "x", at=0)
    tracer.push(a)
    child = tracer.begin("child", "x", parent=b, at=1)
    tracer.pop()
    assert tracer.get(child).parent == b


def test_instant_is_zero_duration_and_can_parent():
    tracer = SpanTracer(clock=lambda: 7)
    point = tracer.instant("node.crash", "node", node=2)
    span = tracer.get(point)
    assert span.start == span.end == 7 and span.duration == 0
    tracer.push(point)
    child = tracer.begin("fd.detect", "fd", at=8)
    tracer.pop()
    assert tracer.get(child).parent == point


def test_events_attach_to_open_spans():
    tracer = SpanTracer(clock=lambda: 0)
    span_id = tracer.begin("can.frame", "can", at=0)
    tracer.event(span_id, "arb-loss", at=5)
    tracer.event(None, "ignored")
    assert tracer.get(span_id).events == [(5, "arb-loss")]


def test_queries_select_children_ancestors_root():
    tracer = SpanTracer(clock=lambda: 0)
    a = tracer.begin("a", "bus", node=1, at=0)
    b = tracer.begin("b", "fd", node=2, parent=a, at=1)
    c = tracer.begin("c", "fd", node=2, parent=b, at=2)
    assert [s.span_id for s in tracer.select(category="fd")] == [b, c]
    assert [s.span_id for s in tracer.select(node=1)] == [a]
    assert [s.span_id for s in tracer.select(name="c")] == [c]
    assert [s.span_id for s in tracer.children(a)] == [b]
    assert [s.span_id for s in tracer.ancestors(c)] == [b, a]  # nearest first
    assert tracer.root(c).span_id == a
    assert tracer.root(a).span_id == a


def test_open_spans_summary_and_clear():
    tracer = SpanTracer(clock=lambda: 0)
    a = tracer.begin("a", "bus", at=0)
    tracer.begin("a", "bus", at=3)
    tracer.end(a, at=2)
    assert len(tracer.open_spans()) == 1
    assert tracer.summary() == {("bus", "a"): 2}
    assert tracer.max_time() == 3
    tracer.enabled = True
    tracer.clear()
    assert len(tracer) == 0 and tracer.enabled


def test_span_to_dict_is_jsonable():
    import json

    tracer = SpanTracer(clock=lambda: 0)
    span_id = tracer.begin("a", "bus", node=1, at=0, mid="M")
    tracer.event(span_id, "e", at=1)
    tracer.end(span_id, at=2)
    payload = span_to_dict(tracer.get(span_id))
    assert json.loads(json.dumps(payload)) == {
        "span_id": span_id,
        "name": "a",
        "category": "bus",
        "node": 1,
        "start": 0,
        "end": 2,
        "parent": None,
        "attrs": {"mid": "M"},
        "events": [[1, "e"]],
    }


def test_render_span_tree_indents_by_causal_depth():
    tracer = SpanTracer(clock=lambda: 0)
    a = tracer.begin("root", "x", node=0, at=0)
    b = tracer.begin("mid", "x", node=1, parent=a, at=1)
    tracer.begin("leaf", "x", node=2, parent=b, at=2)
    lines = render_span_tree(tracer, a)
    assert len(lines) == 3
    assert "root" in lines[0] and "mid" in lines[1] and "leaf" in lines[2]
    # Each causal level is indented two columns deeper than its parent.
    assert lines[1].index("mid") - lines[0].index("root") == 2
    assert lines[2].index("leaf") - lines[1].index("mid") == 2


def test_null_tracer_is_shared_and_disabled():
    assert not NULL_TRACER.enabled
    # The no-op entry points must be safe on the shared instance.
    NULL_TRACER.end(None)
    NULL_TRACER.event(None, "x")


# -- stack integration ----------------------------------------------------------------


@pytest.fixture(scope="module")
def crashed_net():
    """A bootstrapped 4-node network whose node 2 crashed, spans enabled."""
    net = CanelyNetwork(node_count=4, spans=True)
    (
        net.scenario(seed=7)
        .bootstrap()
        .crash(2, at=ms(2))
        .run_until_settled()
    )
    return net


def test_spans_disabled_by_default_records_nothing():
    net = CanelyNetwork(node_count=4)
    net.scenario().bootstrap().crash(2, at=ms(2)).run_until_settled()
    assert not net.sim.spans.enabled
    assert len(net.sim.spans) == 0


def test_crash_scenario_covers_the_span_taxonomy(crashed_net):
    names = {name for _category, name in crashed_net.sim.spans.summary()}
    assert {
        "msh.join",
        "msh.cycle",
        "fd.surveillance",
        "fd.els",
        "fd.detect",
        "can.frame",
        "can.tx",
        "can.rx",
        "fda.nty",
        "rha.timer",
        "rha.execution",
        "msh.view",
        "msh.change",
        "node.crash",
    } <= names


def test_detection_tree_roots_at_the_surveillance_timer(crashed_net):
    spans = crashed_net.sim.spans
    detects = spans.select(
        name="fd.detect", predicate=lambda s: s.attrs.get("failed") == 2
    )
    assert detects, "the crash of node 2 must be detected"
    detect = detects[0]
    parent = spans.get(detect.parent)
    # The detection is caused by the surveillance timer monitoring node 2.
    assert parent.name == "fd.surveillance"
    assert parent.attrs["tag"] == 2
    assert parent.attrs["outcome"] == "fired"
    # ... and that timer was armed by node 2's own last life-sign: walking
    # further up the chain always reaches node 2 traffic.
    assert any(
        span.node == 2 and span.name == "fd.els"
        for span in spans.ancestors(detect.span_id)
    )


def test_failure_sign_fans_out_to_every_survivor(crashed_net):
    spans = crashed_net.sim.spans
    nty_nodes = {
        span.node
        for span in spans.select(name="fda.nty")
        if span.attrs.get("failed") == 2
    }
    assert nty_nodes == {0, 1, 3}
    for span in spans.select(name="fda.nty"):
        if span.attrs.get("failed") != 2:
            continue
        ancestor_names = [a.name for a in spans.ancestors(span.span_id)]
        # Delivered over a per-node rx span of a physical transmission.
        assert ancestor_names[0] == "can.rx"
        assert "can.tx" in ancestor_names
        assert "fd.detect" in ancestor_names


def test_surveillance_timers_record_their_outcome(crashed_net):
    outcomes = {
        span.attrs.get("outcome")
        for span in crashed_net.sim.spans.select(name="fd.surveillance")
        if span.end is not None
    }
    # Life-sign arrivals cancel-and-rearm; the detection fires one.
    assert outcomes == {"fired", "cancelled"}


def test_crashed_node_queue_spans_are_accounted(crashed_net):
    spans = crashed_net.sim.spans
    crashed_frames = [
        span
        for span in spans.select(name="can.frame", node=2)
        if span.attrs.get("outcome") == "crashed"
    ]
    # Whatever node 2 still queued when it died is closed, not leaked.
    for span in crashed_frames:
        assert span.end is not None
    assert not [s for s in spans.open_spans() if s.name == "fd.detect"]


def test_span_ids_are_deterministic_across_same_seed_runs():
    def run():
        net = CanelyNetwork(node_count=4, spans=True)
        (
            net.scenario(seed=3)
            .bootstrap()
            .crash(1, at=ms(2))
            .run_until_settled()
        )
        return [span_to_dict(span) for span in net.sim.spans]

    assert run() == run()
