"""Unit tests for the perf-regression harness (repro.perf.bench)."""

import json

import pytest

from repro.perf import bench as perf_bench
from repro.perf.bench import (
    SCHEMA,
    _frame_corpus,
    compare_reports,
    environment,
    load_report,
    render_report,
    write_report,
)


def _report(results):
    return {"schema": SCHEMA, "quick": True, "environment": {}, "results": results}


def test_frame_corpus_is_deterministic_and_distinct():
    corpus = _frame_corpus(64)
    assert corpus == _frame_corpus(64)
    assert len(set(corpus)) == 64
    for identifier, data, remote, extended in corpus:
        assert 0 <= identifier < (1 << 29)
        assert extended
        assert not (remote and data)
        assert len(data) <= 8


def test_environment_metadata_fields():
    env = environment()
    assert set(env) == {
        "python", "implementation", "platform", "machine", "cpu_count",
        "compiled", "toggles",
    }
    compiled = env["compiled"]
    assert set(compiled) == {
        "requested", "backend", "toolchain", "modules", "active",
    }
    assert set(compiled["modules"]) == {
        "repro.sim.event", "repro.sim.kernel", "repro.can.bitstream",
    }
    # The feature-toggle block records the live defaults, so a report is
    # attributable to an exact fast-path configuration.
    toggles = env["toggles"]
    assert set(toggles) == {
        "batch_dispatch", "fast_rearm", "tuple_entries", "idle_skip",
        "timer_wheel", "filtered_delivery", "columnar_trace",
    }
    assert all(isinstance(value, bool) for value in toggles.values())


def test_environment_toggles_track_live_modules(monkeypatch):
    import repro.sim.timers as timers_mod

    monkeypatch.setattr(timers_mod, "TIMER_WHEEL", True)
    assert environment()["toggles"]["timer_wheel"] is True


def test_write_and_load_roundtrip(tmp_path):
    report = _report({"x": {"unit": "u", "value": 1.0}})
    path = str(tmp_path / "BENCH.json")
    write_report(report, path)
    assert load_report(path) == report


def test_load_report_rejects_other_schemas(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "other/9", "results": {}}))
    with pytest.raises(ValueError, match="unsupported schema"):
        load_report(str(path))


def test_compare_no_regression_within_threshold():
    baseline = _report({"enc": {"unit": "x/s", "value": 100.0, "speedup": 4.0}})
    current = _report({"enc": {"unit": "x/s", "value": 80.0, "speedup": 3.2}})
    # 20% drop on both metrics: inside the default 25% threshold.
    assert compare_reports(baseline, current) == []


def test_compare_flags_value_and_speedup_regressions():
    baseline = _report({"enc": {"unit": "x/s", "value": 100.0, "speedup": 4.0}})
    current = _report({"enc": {"unit": "x/s", "value": 50.0, "speedup": 1.0}})
    regressions = compare_reports(baseline, current)
    assert len(regressions) == 2
    assert any("enc.speedup" in line for line in regressions)
    assert any("enc.value" in line for line in regressions)


def test_compare_lower_is_better_inverts():
    baseline = _report({"wall": {"unit": "s", "value": 1.0, "lower_is_better": True}})
    slower = _report({"wall": {"unit": "s", "value": 2.0, "lower_is_better": True}})
    faster = _report({"wall": {"unit": "s", "value": 0.5, "lower_is_better": True}})
    assert compare_reports(baseline, slower) != []
    assert compare_reports(baseline, faster) == []


def test_compare_portable_only_ignores_absolute_values():
    baseline = _report({"enc": {"unit": "x/s", "value": 100.0, "speedup": 4.0}})
    current = _report({"enc": {"unit": "x/s", "value": 10.0, "speedup": 4.0}})
    assert compare_reports(baseline, current, portable_only=True) == []
    assert compare_reports(baseline, current) != []


def test_compare_skips_unknown_benchmarks():
    baseline = _report({})
    current = _report({"new": {"unit": "x/s", "value": 1.0}})
    assert compare_reports(baseline, current) == []


def test_compare_rejects_bad_threshold():
    with pytest.raises(ValueError, match="threshold"):
        compare_reports(_report({}), _report({}), threshold=1.5)


def test_campaign_wallclock_quick_runs_clean():
    result = perf_bench.bench_campaign_wallclock(quick=True)
    assert result["unit"] == "s"
    assert result["value"] > 0
    assert result["lower_is_better"]
    # The corpus is mode-invariant (see the benchmark's docstring), so
    # even the quick run measures the full six-scenario campaign.
    assert result["verdicts"] == ["ok"] * 6


def test_committed_report_meets_the_acceptance_bars():
    """BENCH_core.json at the repo root is a real measurement: the frame
    encoding speedup must be >= 3x, kernel throughput >= 4x, end-to-end
    event throughput >= 4x on the 48-node canonical scenario, and the
    10->200-node sweep must report sub-linear per-event cost growth."""
    report = load_report("BENCH_core.json")
    results = report["results"]
    assert results["frame_encoding"]["speedup"] >= 3.0
    assert results["kernel_throughput"]["speedup"] >= 4.0
    assert results["kernel_throughput"]["unit"] == "events/s"
    assert results["event_throughput"]["speedup"] >= 4.0
    scaling = results["stack_scaling"]
    assert scaling["sublinear"]
    assert scaling["cost_ratio"] < scaling["linear_ratio"]
    assert scaling["nodes"] == [10, 50, 200]
    assert set(scaling["per_node"]) == {"10", "50", "200"}
    # The wall-clock macro carries its sequential reference so the report
    # renders an attributable speedup, not a bare absolute.
    assert results["campaign_wallclock"]["reference_value"] > 0
    assert results["campaign_wallclock"]["lower_is_better"]
    # The QoS engine reads traces only through the columnar bulk
    # accessor; the committed run must show it no slower than the
    # row-scan reference on identical analysis work.
    qos = results["qos_compute"]
    assert qos["unit"] == "computes/s"
    assert qos["speedup"] >= 1.0
    assert qos["scenario"]["msh_changes"] > 0
    assert report["environment"]["python"]
    assert "toggles" in report["environment"]


def test_render_report_mentions_every_benchmark():
    report = _report(
        {
            "enc": {"unit": "x/s", "value": 2.0, "reference_value": 1.0,
                    "speedup": 2.0, "cached_speedup": 10.0},
            "wall": {"unit": "s", "value": 0.5, "lower_is_better": True},
        }
    )
    text = render_report(report)
    assert "enc" in text and "wall" in text
    assert "speedup 2.00x" in text


def test_cli_bench_regression_gate(tmp_path, monkeypatch, capsys):
    """``repro bench --baseline`` exits 1 when the current run regresses
    and 0 when it does not (runner stubbed: the gate is what's under test)."""
    import repro.perf
    from repro.__main__ import main

    current = _report({"enc": {"unit": "x/s", "value": 1.0, "speedup": 2.0}})
    monkeypatch.setattr(
        repro.perf,
        "run_benchmarks",
        lambda quick=False, repeats=None, only=None: current,
    )
    baseline_path = str(tmp_path / "baseline.json")
    out_path = str(tmp_path / "out.json")

    write_report(_report({"enc": {"unit": "x/s", "value": 1.0, "speedup": 100.0}}), baseline_path)
    assert main(["bench", "--quick", "--baseline", baseline_path]) == 1
    assert "REGRESSIONS" in capsys.readouterr().out

    write_report(current, baseline_path)
    assert main(["bench", "--quick", "--baseline", baseline_path, "--json", out_path]) == 0
    assert load_report(out_path) == current
    assert "no regressions" in capsys.readouterr().out


def test_run_benchmarks_only_filters_the_suite(monkeypatch):
    """``only`` restricts the run to the named benchmarks in suite order
    and rejects unknown names before running anything."""
    from repro.perf.bench import BENCHMARKS, run_benchmarks

    calls = []
    for name in BENCHMARKS:
        monkeypatch.setitem(
            BENCHMARKS, name,
            lambda quick=False, repeats=None, _n=name: (
                calls.append(_n) or {"unit": "u", "value": 1.0}
            ),
        )
    report = run_benchmarks(quick=True, only=["stack_scaling"])
    assert calls == ["stack_scaling"]
    assert set(report["results"]) == {"stack_scaling"}
    with pytest.raises(ValueError, match="unknown benchmark"):
        run_benchmarks(quick=True, only=["no_such_bench"])


def test_cli_require_sublinear_gate(monkeypatch, capsys):
    """``repro bench --require-sublinear`` exits 1 when the scaling sweep
    reports linear growth (or did not run) and 0 when it is sub-linear."""
    import repro.perf
    from repro.__main__ import main

    def stub(result):
        return lambda quick=False, repeats=None, only=None: _report(result)

    linear = {"stack_scaling": {
        "unit": "events/s", "value": 1.0, "sublinear": False,
        "cost_ratio": 25.0, "linear_ratio": 20.0,
    }}
    monkeypatch.setattr(repro.perf, "run_benchmarks", stub(linear))
    assert main(["bench", "--quick", "--require-sublinear"]) == 1
    assert "grew linearly" in capsys.readouterr().out

    monkeypatch.setattr(repro.perf, "run_benchmarks", stub({}))
    assert main(["bench", "--quick", "--require-sublinear"]) == 1
    assert "did not run" in capsys.readouterr().out

    sublinear = {"stack_scaling": {
        "unit": "events/s", "value": 1.0, "sublinear": True,
        "cost_ratio": 8.0, "linear_ratio": 20.0,
    }}
    monkeypatch.setattr(repro.perf, "run_benchmarks", stub(sublinear))
    assert main(["bench", "--quick", "--require-sublinear"]) == 0
    assert "sub-linear scaling" in capsys.readouterr().out


def test_row_scan_adapter_matches_native_columns():
    """The qos_compute reference path must see identical columns."""
    from repro.perf.bench import _RowScanColumns
    from repro.sim.trace import ColumnarTraceRecorder

    trace = ColumnarTraceRecorder()
    trace.record(10, "msh.change", node=0, active=frozenset({0, 1}))
    trace.record(20, "node.crash", node=1)
    trace.record(30, "msh.change", node=1, active=frozenset({0}))
    adapter = _RowScanColumns(trace)
    for category in ("msh.change", "node.crash", "nothing"):
        native = trace.category_columns(category)
        via_rows = adapter.category_columns(category)
        assert list(native[0]) == list(via_rows[0])
        assert list(native[1]) == list(via_rows[1])
        assert native[2] == via_rows[2]
    # Everything else delegates to the wrapped trace.
    assert adapter.count("msh.change") == 2
