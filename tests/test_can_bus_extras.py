"""Unit tests for bus inaccessibility injection and bus-off recovery."""

from repro.can.bus import CanBus
from repro.can.controller import CanController, ControllerState
from repro.can.errormodel import FaultInjector, FaultKind
from repro.can.frame import data_frame
from repro.can.identifiers import MessageId, MessageType
from repro.sim.clock import us
from repro.sim.kernel import Simulator


def make_bus(node_count=3, injector=None, bus_off_recovery=False):
    sim = Simulator()
    bus = CanBus(sim, injector=injector, bus_off_recovery=bus_off_recovery)
    controllers = {}
    for node_id in range(node_count):
        controller = CanController(node_id)
        bus.attach(controller)
        controllers[node_id] = controller
    return sim, bus, controllers


def test_inaccessibility_delays_transmission():
    sim, bus, ctl = make_bus()
    arrivals = []
    ctl[1].on_rx = lambda f: arrivals.append(sim.now)
    bus.inject_inaccessibility(1000)  # 1000 bit-times = 1 ms at 1 Mbps
    ctl[0].submit(data_frame(MessageId(MessageType.DATA, node=0), b""))
    sim.run()
    assert arrivals
    assert arrivals[0] >= us(1000)


def test_inaccessibility_does_not_destroy_inflight_frame():
    sim, bus, ctl = make_bus()
    arrivals = []
    ctl[1].on_rx = lambda f: arrivals.append(sim.now)
    ctl[0].submit(data_frame(MessageId(MessageType.DATA, node=0), b""))
    sim.run_until(us(10))  # frame is on the wire
    bus.inject_inaccessibility(500)
    sim.run()
    assert len(arrivals) == 1


def test_overlapping_windows_extend_not_stack():
    sim, bus, ctl = make_bus()
    bus.inject_inaccessibility(1000)
    bus.inject_inaccessibility(400)  # shorter, fully contained: no effect
    arrivals = []
    ctl[1].on_rx = lambda f: arrivals.append(sim.now)
    ctl[0].submit(data_frame(MessageId(MessageType.DATA, node=0), b""))
    sim.run()
    assert us(1000) <= arrivals[0] < us(1400)


def test_inaccessibility_accounted_in_stats():
    sim, bus, ctl = make_bus()
    bus.inject_inaccessibility(250)
    assert bus.stats.inaccessibility_bits == 250
    assert sim.trace.count("bus.inaccessible") == 1


def test_bus_off_permanent_by_default():
    injector = FaultInjector()
    injector.fault_on_frame(lambda f: True, FaultKind.CONSISTENT_OMISSION, count=40)
    sim, bus, ctl = make_bus(injector=injector)
    ctl[0].submit(data_frame(MessageId(MessageType.DATA, node=0), b""))
    sim.run_until(us(50_000))
    assert ctl[0].state is ControllerState.BUS_OFF
    assert not ctl[0].alive
    assert bus.stats.bus_off_recoveries == 0


def test_bus_off_recovery_when_enabled():
    injector = FaultInjector()
    injector.fault_on_frame(lambda f: True, FaultKind.CONSISTENT_OMISSION, count=40)
    sim, bus, ctl = make_bus(injector=injector, bus_off_recovery=True)
    arrivals = []
    ctl[1].on_rx = lambda f: arrivals.append(sim.now)
    ctl[0].submit(data_frame(MessageId(MessageType.DATA, node=0), b""))
    sim.run_until(us(100_000))
    assert bus.stats.bus_off_recoveries >= 1
    assert ctl[0].state is ControllerState.ERROR_ACTIVE
    # After recovery the node can transmit again.
    ctl[0].submit(data_frame(MessageId(MessageType.DATA, node=0, ref=1), b""))
    sim.run_until(us(110_000))
    assert arrivals


def test_recovery_not_scheduled_for_crashed_node():
    injector = FaultInjector()
    injector.fault_on_frame(
        lambda f: True, FaultKind.CONSISTENT_OMISSION, count=40, crash_sender=True
    )
    sim, bus, ctl = make_bus(injector=injector, bus_off_recovery=True)
    ctl[0].submit(data_frame(MessageId(MessageType.DATA, node=0), b""))
    sim.run_until(us(100_000))
    assert ctl[0].crashed
    assert not ctl[0].alive
