"""The optional compiled core: status reporting and clean degradation.

The compiled build itself needs a toolchain (Cython or mypyc) the test
environment may not have; everything here must pass either way. The CI
smoke job installs Cython and runs ``tools/build_compiled.py`` for real.
"""

import os
import subprocess
import sys

from repro.perf import compiled

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BUILD_TOOL = os.path.join(REPO_ROOT, "tools", "build_compiled.py")


def test_requested_parses_truthy_values():
    assert not compiled.requested({})
    assert not compiled.requested({"REPRO_COMPILED": "0"})
    assert not compiled.requested({"REPRO_COMPILED": "off"})
    for value in ("1", "true", "YES", " on "):
        assert compiled.requested({"REPRO_COMPILED": value})


def test_backend_defaults_to_cython():
    assert compiled.backend({}) == "cython"
    assert compiled.backend({"REPRO_COMPILED_BACKEND": "mypyc"}) == "mypyc"
    assert compiled.backend({"REPRO_COMPILED_BACKEND": "weird"}) == "cython"


def test_status_covers_every_core_module():
    status = compiled.status()
    assert set(status["modules"]) == set(compiled.COMPILED_MODULES)
    assert status["active"] == any(status["modules"].values())
    assert status["toolchain"] in (None, "cython", "mypyc")


def test_build_tool_check_mode_reports_without_building():
    result = subprocess.run(
        [sys.executable, BUILD_TOOL, "--check"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0
    assert '"modules"' in result.stdout


def test_build_tool_skips_cleanly_without_toolchain():
    """The smoke-job contract: no toolchain means exit 0 and say so."""
    if compiled.available_toolchain() is not None:
        return  # a real toolchain is present; the build path is exercised
    result = subprocess.run(
        [sys.executable, BUILD_TOOL],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0
    assert "skipped" in result.stdout


def test_setup_py_without_flag_builds_no_extensions():
    """Importing setup.py's extension hook with the flag unset is empty."""
    env = dict(os.environ)
    env.pop("REPRO_COMPILED", None)
    result = subprocess.run(
        [
            sys.executable,
            "-c",
            "import os, runpy, sys; sys.argv=['setup.py', '--version']; "
            "runpy.run_path('setup.py', run_name='__main__')",
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    assert result.returncode == 0, result.stderr
