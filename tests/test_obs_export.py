"""Chrome trace-event export, validator and MSC renderer tests."""

import json

import pytest

from repro.core.stack import CanelyNetwork
from repro.obs.export import (
    CHROME_CATEGORIES,
    chrome_trace_events,
    export_chrome_trace,
    render_msc,
    validate_chrome_trace,
)
from repro.obs.spans import SpanTracer
from repro.sim.clock import ms


def _crash_run(seed=0):
    net = CanelyNetwork(node_count=4, spans=True)
    net.scenario(seed=seed).bootstrap().crash(2, at=ms(2)).run_until_settled()
    return net


@pytest.fixture(scope="module")
def net():
    return _crash_run()


# -- chrome trace-event export --------------------------------------------------------


def test_export_is_byte_identical_across_same_seed_runs(tmp_path):
    """The acceptance property: two runs with the same seed export
    byte-identical Chrome trace files (diffable, golden-pinnable)."""
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    export_chrome_trace(_crash_run(seed=5).sim.spans, str(first))
    export_chrome_trace(_crash_run(seed=5).sim.spans, str(second))
    assert first.read_bytes() == second.read_bytes()


def test_export_validates_and_is_well_formed_json(net):
    text = export_chrome_trace(net.sim.spans)
    payload = json.loads(text)
    assert payload["displayTimeUnit"] == "ms"
    assert validate_chrome_trace(text) == []
    assert validate_chrome_trace(payload) == []
    assert validate_chrome_trace(payload["traceEvents"]) == []


def test_events_map_nodes_to_processes_and_layers_to_threads(net):
    events = chrome_trace_events(net.sim.spans)
    metadata = [e for e in events if e["ph"] == "M"]
    process_names = {
        e["pid"]: e["args"]["name"]
        for e in metadata
        if e["name"] == "process_name"
    }
    # Node n is pid n + 1 (pid 0 is reserved for bus-global spans).
    assert process_names[3] == "node 2"
    assert set(process_names.values()) == {f"node {n}" for n in range(4)}
    thread_names = {
        (e["pid"], e["tid"]): e["args"]["name"]
        for e in metadata
        if e["name"] == "thread_name"
    }
    assert set(thread_names.values()) <= set(CHROME_CATEGORIES)
    for event in events:
        if event["ph"] != "X":
            continue
        assert event["dur"] >= 0
        assert event["args"]["node"] == event["pid"] - 1
        category = CHROME_CATEGORIES[event["tid"]]
        assert event["cat"] == category
        assert thread_names[(event["pid"], event["tid"])] == category


def test_timestamps_are_microseconds(net):
    crash_span = net.sim.spans.select(name="node.crash", node=2)[0]
    events = chrome_trace_events(net.sim.spans)
    crash_events = [e for e in events if e.get("name") == "node.crash"]
    assert crash_events[0]["ts"] == crash_span.start / 1000.0


def test_open_spans_are_closed_at_trace_end_and_tagged(net):
    spans = net.sim.spans
    assert spans.open_spans(), "the crashed node leaves open spans"
    close_at = spans.max_time() / 1000.0
    events = chrome_trace_events(spans)
    open_events = [
        e for e in events if e["ph"] == "X" and e["args"].get("open")
    ]
    assert len(open_events) == len(spans.open_spans())
    for event in open_events:
        assert event["ts"] + event["dur"] == pytest.approx(close_at)


def test_flow_events_pair_up_and_validate(net):
    events = chrome_trace_events(net.sim.spans, flows=True)
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    assert starts and len(starts) == len(finishes)
    assert {e["id"] for e in starts} == {e["id"] for e in finishes}
    assert validate_chrome_trace(events) == []


def test_export_writes_the_file(tmp_path, net):
    path = tmp_path / "trace.json"
    text = export_chrome_trace(net.sim.spans, str(path))
    assert path.read_text() == text + "\n"


# -- validator on synthetic payloads --------------------------------------------------


def test_validator_flags_missing_keys():
    problems = validate_chrome_trace([{"pid": 0, "tid": 0}])
    assert any("missing 'ph'" in p for p in problems)
    problems = validate_chrome_trace([{"ph": "X", "pid": 0, "tid": 0}])
    assert any("missing 'ts'" in p for p in problems)


def test_validator_flags_negative_duration_and_ts_regression():
    events = [
        {"name": "a", "ph": "X", "pid": 0, "tid": 0, "ts": 5.0, "dur": -1},
        {"name": "b", "ph": "X", "pid": 0, "tid": 0, "ts": 4.0, "dur": 0},
    ]
    problems = validate_chrome_trace(events)
    assert any("negative dur" in p for p in problems)
    assert any("not increasing" in p for p in problems)


def test_validator_flags_unbalanced_begin_end():
    events = [
        {"name": "a", "ph": "B", "pid": 0, "tid": 0, "ts": 1.0},
        {"name": "a", "ph": "E", "pid": 0, "tid": 0, "ts": 2.0},
        {"name": "b", "ph": "E", "pid": 0, "tid": 0, "ts": 3.0},
        {"name": "c", "ph": "B", "pid": 1, "tid": 0, "ts": 1.0},
    ]
    problems = validate_chrome_trace(events)
    assert any("'E' without matching 'B'" in p for p in problems)
    assert any("unmatched 'B'" in p for p in problems)


def test_validator_flags_flow_finish_without_start():
    events = [{"name": "f", "ph": "f", "pid": 0, "tid": 0, "ts": 1.0, "id": 9}]
    assert any(
        "flow finish without start" in p
        for p in validate_chrome_trace(events)
    )


def test_validator_strict_ts_rejects_ties():
    events = [
        {"name": "a", "ph": "X", "pid": 0, "tid": 0, "ts": 1.0, "dur": 0},
        {"name": "b", "ph": "X", "pid": 0, "tid": 0, "ts": 1.0, "dur": 0},
    ]
    assert validate_chrome_trace(events) == []
    assert validate_chrome_trace(events, strict_ts=True)


def test_empty_tracer_exports_empty_but_valid():
    tracer = SpanTracer(clock=lambda: 0)
    text = export_chrome_trace(tracer)
    assert json.loads(text)["traceEvents"] == []
    assert validate_chrome_trace(text) == []


def test_bus_global_spans_land_on_pid_zero():
    tracer = SpanTracer(clock=lambda: 0)
    span_id = tracer.begin("can.tx", "bus", at=0)  # node defaults to -1
    tracer.end(span_id, at=5)
    events = chrome_trace_events(tracer)
    process = [e for e in events if e.get("name") == "process_name"]
    assert process[0]["pid"] == 0
    assert process[0]["args"]["name"] == "bus"
    assert [e["pid"] for e in events if e["ph"] == "X"] == [0]


# -- message sequence chart -----------------------------------------------------------


def test_msc_renders_crash_and_bus_rows(net):
    crash = net.sim.trace.select(category="node.crash", node=2)[0]
    lines = render_msc(
        net.sim.trace, start=crash.time - ms(1), end=crash.time + ms(30)
    )
    header = lines[0]
    for node_id in range(4):
        assert f"n{node_id}" in header
    body = "\n".join(lines[1:])
    assert "crash" in body and "X" in body
    assert "(rtr)" in body  # life-sign remote frames
    assert "o" in body and ">" in body  # sender and receivers


def test_msc_empty_window():
    net = CanelyNetwork(node_count=3)
    assert render_msc(net.sim.trace) == ["(no traffic in window)"]


def test_msc_respects_node_selection_and_max_rows(net):
    crash = net.sim.trace.select(category="node.crash", node=2)[0]
    lines = render_msc(
        net.sim.trace,
        nodes=[0, 2],
        start=crash.time - ms(1),
        end=crash.time + ms(30),
        max_rows=3,
    )
    assert "n1" not in lines[0] and "n3" not in lines[0]
    assert len(lines) == 1 + 3 + 1  # header + rows + truncation note
    assert "truncated" in lines[-1]
