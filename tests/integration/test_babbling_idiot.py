"""Integration: the babbling idiot — the limitation Fig. 11 admits.

CANELy provides no babbling-idiot avoidance (no bus guardian). These tests
*reproduce the limitation*: a node babbling at top priority starves the
life-sign traffic and collapses the membership service — while the
agreement machinery itself keeps every surviving view consistent. Stopping
the babbler (what a bus guardian would do) lets the system recover through
rejoins.
"""

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import ms
from repro.workloads.adversary import BabblingIdiot

CONFIG = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))


def test_babbler_starves_lifesigns_and_collapses_membership():
    net = CanelyNetwork(node_count=5, config=CONFIG)
    net.scenario().bootstrap()
    babbler = BabblingIdiot(net.sim, net.bus, node_id=15)
    babbler.start()
    net.run_for(ms(300))
    # The service collapsed: members were expelled for missing heartbeats.
    views = net.member_views()
    collapsed = not views or all(len(view) < 5 for view in views.values())
    assert collapsed
    # ...but whatever views remain are still mutually consistent.
    assert net.views_agree()


def test_babbler_consumes_most_of_the_bus():
    net = CanelyNetwork(node_count=5, config=CONFIG)
    net.scenario().bootstrap()
    start_fda_bits = net.bus.stats.bits_by_type.get("FDA", 0)
    start_time = net.sim.now
    babbler = BabblingIdiot(net.sim, net.bus, node_id=15)
    babbler.start()
    net.run_for(ms(200))
    fda_bits = net.bus.stats.bits_by_type.get("FDA", 0) - start_fda_bits
    window_bits = (net.sim.now - start_time) // 1000  # ticks -> bit-times
    assert fda_bits / window_bits > 0.8  # the babbler owns the bus


def test_guardian_intervention_allows_recovery():
    """What a bus guardian buys: silence the babbler, the system heals."""
    net = CanelyNetwork(node_count=4, config=CONFIG)
    net.scenario().bootstrap()
    babbler = BabblingIdiot(net.sim, net.bus, node_id=15)
    babbler.start()
    net.run_for(ms(300))
    babbler.stop()
    net.run_for(ms(100))
    # Expelled-but-alive nodes rejoin.
    for node in net.nodes.values():
        if not node.is_member:
            node.join()
    net.run_for(ms(500))
    assert net.views_agree()
    assert sorted(net.agreed_view()) == [0, 1, 2, 3]


def test_throttled_babbler_is_survivable():
    """A low-rate 'babbler' (gap >> frame time) is just load: no collapse."""
    net = CanelyNetwork(node_count=4, config=CONFIG)
    net.scenario().bootstrap()
    babbler = BabblingIdiot(net.sim, net.bus, node_id=15, gap=ms(5))
    babbler.start()
    net.run_for(ms(300))
    assert net.views_agree()
    assert sorted(net.agreed_view()) == [0, 1, 2, 3]
