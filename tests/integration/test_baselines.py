"""Integration: CANELy against the Section 6.6 baselines, head to head."""

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.services.cal_nm import CalNodeGuarding
from repro.services.osek_nm import OsekNetworkManagement
from repro.sim.clock import ms, sec
from repro.sim.kernel import Simulator
from repro.sim.timers import TimerService
from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.can.driver import CanStandardLayer
from repro.workloads.scenarios import detection_latencies

NODES = 8


def canely_latency():
    config = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))
    net = CanelyNetwork(node_count=NODES, config=config)
    net.scenario().bootstrap()
    crash_time = net.sim.now
    net.node(5).crash()
    net.run_for(sec(3))
    return detection_latencies(net, {5: crash_time})[5]


def osek_latency(t_typ=ms(100)):
    sim = Simulator()
    bus = CanBus(sim)
    services = {}
    controllers = {}
    for node_id in range(NODES):
        controller = CanController(node_id)
        bus.attach(controller)
        controllers[node_id] = controller
        services[node_id] = OsekNetworkManagement(
            CanStandardLayer(controller),
            TimerService(sim),
            sim,
            ring_nodes=list(range(NODES)),
            t_typ=t_typ,
        )
        services[node_id].start()
    sim.run_until(sec(3))
    # Worst case: the node dies right after forwarding the token — its
    # silence only becomes observable when the token comes around again.
    sends_before = services[5].ring_messages_sent
    while services[5].ring_messages_sent == sends_before:
        sim.run_until(sim.now + ms(10))
    controllers[5].crash()
    crash_time = sim.now
    sim.run_until(crash_time + sec(8))
    detected = services[0].detected.get(5)
    return None if detected is None else detected - crash_time


def cal_latency(guard_time=ms(50)):
    sim = Simulator()
    bus = CanBus(sim)
    services = {}
    controllers = {}
    for node_id in range(NODES):
        controller = CanController(node_id)
        bus.attach(controller)
        controllers[node_id] = controller
        services[node_id] = CalNodeGuarding(
            CanStandardLayer(controller),
            TimerService(sim),
            sim,
            master_id=0,
            slave_ids=list(range(1, NODES)),
            guard_time=guard_time,
        )
        services[node_id].start()
    sim.run_until(sec(2))
    controllers[5].crash()
    crash_time = sim.now
    sim.run_until(sec(8))
    detected = services[0].detected.get(5)
    return None if detected is None else detected - crash_time


def test_canely_detects_in_tens_of_ms():
    latency = canely_latency()
    assert latency is not None
    assert latency < ms(50)


def test_osek_detects_in_order_of_a_second():
    """Section 6.6: OSEK's latency for TTyp=100ms is ~1 s."""
    latency = osek_latency()
    assert latency is not None
    assert ms(100) <= latency <= sec(2)


def test_cal_latency_scales_with_polling_round():
    latency = cal_latency()
    assert latency is not None
    # life time = guard * slaves * factor = 50ms * 7 * 2 = 700ms.
    assert ms(300) <= latency <= sec(1.5)


def test_canely_order_of_magnitude_faster_than_osek():
    """The paper's headline related-work comparison."""
    assert canely_latency() * 10 <= osek_latency()


def test_canely_faster_than_cal():
    assert canely_latency() * 5 <= cal_latency()
