"""Large bridged populations: both backends across gateway-bridged segments.

The acceptance scenario for the multi-segment topology: a population of
at least 100 nodes spread over two-plus CAN segments must bootstrap to a
full agreed view and detect a crash under a membership backend. SWIM
carries the >100-node case — its messages name single nodes, so the
population is bounded by the MID space (256), not the CAN data field.
CANELy's view serialization caps it at 64 members (RHV must fit the
8-byte data field); its case here runs at that wire maximum. The gap is
itself a finding of the comparison (see docs/backends.md).
"""

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import ms
from repro.swim import SwimConfig


def _assert_full_view(net, expected):
    assert net.views_agree()
    assert sorted(net.agreed_view()) == expected


def test_swim_120_nodes_across_three_segments():
    config = SwimConfig(
        capacity=128,
        probe_period=ms(50),
        fail_after=ms(150),
        suspicion_timeout=ms(100),
        join_wait=ms(400),
    )
    net = CanelyNetwork(
        node_count=120, config=config, backend="swim", segments=3
    )
    assert len(net.buses) == 3
    assert net.gateway is not None
    net.join_all()
    net.run_for(config.join_wait + 6 * config.probe_period)
    _assert_full_view(net, list(range(120)))
    # Crash a node on the middle segment: the removal must propagate to
    # observers on every segment through the gateway.
    victim = 60
    assert net.segment_of(victim) == 1
    net.node(victim).crash()
    net.run_for(config.detection_latency_bound + 6 * config.probe_period)
    survivors = [n for n in range(120) if n != victim]
    _assert_full_view(net, survivors)
    assert net.gateway.stats.forwarded > 0
    assert net.gateway.stats.dropped == 0


def test_canely_at_its_64_node_wire_maximum_on_two_segments():
    config = CanelyConfig.for_population(64, tm=ms(100), tjoin_wait=ms(400))
    net = CanelyNetwork(node_count=64, config=config, segments=2)
    net.join_all()
    net.run_for(config.tjoin_wait + round(6 * config.tm))
    _assert_full_view(net, list(range(64)))
    # First node of the second segment fails; segment-0 observers detect.
    victim = 32
    assert net.segment_of(victim) == 1
    net.node(victim).crash()
    net.run_for(round(8 * config.tm))
    survivors = [n for n in range(64) if n != victim]
    _assert_full_view(net, survivors)
    assert net.gateway.stats.forwarded > 0
    assert net.gateway.stats.dropped == 0
