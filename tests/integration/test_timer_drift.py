"""Integration: the protocol suite on drifting oscillators.

Real nodes run their protocol timers on imperfect clocks. Crystal-grade
drift (±100 ppm) must be invisible; grossly detuned timers (a node whose
heartbeat period runs 40% long) are a *fault* the failure detector
correctly converts into an expulsion.
"""

import random

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import ms
from repro.workloads.scenarios import detection_latencies

CONFIG = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))


def drifted_network(node_count=6, ppm=100, seed=3):
    rng = random.Random(seed)
    drifts = {
        node_id: rng.uniform(-ppm * 1e-6, ppm * 1e-6)
        for node_id in range(node_count)
    }
    return CanelyNetwork(node_count=node_count, config=CONFIG, timer_drifts=drifts)


def test_crystal_drift_is_invisible():
    net = drifted_network(ppm=100)
    net.scenario().bootstrap()
    net.run_for(ms(1000))
    assert net.views_agree()
    assert sorted(net.agreed_view()) == list(range(6))


def test_detection_still_within_bound_under_drift():
    net = drifted_network(ppm=200)
    net.scenario().bootstrap()
    crash_time = net.sim.now
    net.node(4).crash()
    net.run_for(ms(200))
    latency = detection_latencies(net, {4: crash_time})[4]
    assert latency is not None
    # The bound gains at most the drift fraction.
    assert latency <= (CONFIG.thb + CONFIG.ttd) * 1.01 + ms(2)


def test_grossly_detuned_heartbeat_is_expelled():
    """A node whose timers run 40% slow misses its heartbeat deadlines:
    the surveillance margin (Ttd) cannot absorb it, and the failure
    detector treats it as what it is — a timing-failed node."""
    drifts = {5: 0.40}
    net = CanelyNetwork(node_count=6, config=CONFIG, timer_drifts=drifts)
    net.join_all()
    net.run_for(CONFIG.tjoin_wait + 4 * CONFIG.tm)
    net.run_for(ms(500))
    assert net.views_agree()
    view = set(net.agreed_view())
    assert 5 not in view
    assert view == {0, 1, 2, 3, 4}


def test_mild_detuning_absorbed_by_ttd_margin():
    """A 20% slow heartbeat still lands inside Thb + Ttd: tolerated."""
    drifts = {5: 0.20}
    net = CanelyNetwork(node_count=6, config=CONFIG, timer_drifts=drifts)
    net.scenario().bootstrap()
    net.run_for(ms(500))
    assert sorted(net.agreed_view()) == list(range(6))
