"""Integration: everything at once — traffic, churn, crashes, clock sync."""

import random

from repro.can.errormodel import FaultInjector
from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.llc.properties import check_all_properties
from repro.services.clocksync import ClockSyncService, VirtualClock, precision
from repro.sim.clock import ms, us
from repro.workloads.scenarios import detection_latencies
from repro.workloads.traffic import PeriodicSource, SporadicSource, TrafficSet

CONFIG = CanelyConfig(capacity=32, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))


def test_full_system_day_in_the_life():
    """Traffic + crash + rejoin + leave + clock sync, with stochastic
    faults within the model's degree bounds — views must agree throughout
    and the substrate properties must hold at the end."""
    rng = random.Random(99)
    injector = FaultInjector(
        rng=rng, consistent_probability=0.01, inconsistent_probability=0.003
    )
    net = CanelyNetwork(node_count=10, config=CONFIG, injector=injector)
    net.scenario().bootstrap()

    # Application traffic: half the nodes chatty, half sporadic.
    traffic = TrafficSet()
    for node_id in range(5):
        traffic.add(PeriodicSource(net.sim, net.node(node_id), period=ms(8)))
    for node_id in range(5, 10):
        traffic.add(
            SporadicSource(
                net.sim,
                net.node(node_id),
                mean_interarrival=ms(40),
                rng=random.Random(node_id),
            )
        )

    # Clock synchronization running alongside.
    clocks = {}
    for node_id, node in net.nodes.items():
        clock = VirtualClock(drift=random.Random(1000 + node_id).uniform(-1e-4, 1e-4))
        clocks[node_id] = clock
        ClockSyncService(
            node.layer,
            node.timers,
            net.sim,
            clock,
            resync_period=ms(100),
            reception_jitter_rng=random.Random(2000 + node_id),
        ).start()

    net.run_for(ms(300))
    assert net.views_agree()

    # A crash mid-operation.
    crash_time = net.sim.now
    net.node(7).crash()
    net.run_for(ms(300))
    assert net.views_agree()
    assert 7 not in net.agreed_view()
    latency = detection_latencies(net, {7: crash_time})[7]
    assert latency is not None and latency <= ms(50)

    # A leave and a rejoin.
    net.node(2).leave()
    net.run_for(ms(300))
    net.node(7).recover()
    net.node(7).join()
    net.run_for(ms(400))
    assert net.views_agree()
    view = set(net.agreed_view())
    assert 2 not in view and 7 in view

    # Clocks stayed synchronized through all of it.
    live_clocks = {
        node_id: clock
        for node_id, clock in clocks.items()
        if not net.node(node_id).crashed and net.node(node_id).is_member
    }
    assert precision(live_clocks, net.sim.now) < us(80)

    # The substrate honoured the system model the whole time. Stochastic
    # inconsistencies happened (rng-dependent), but within generous bounds.
    report = check_all_properties(
        net.sim.trace,
        correct_nodes=[n for n in range(10) if n != 2 and not net.node(n).crashed],
        omission_degree=10_000,
        inconsistent_degree=10_000,
        window=CONFIG.reference_window,
    )
    mcan_lcan_structural = [
        violation
        for violation in report.violations
        if violation.startswith(("MCAN1", "MCAN2", "LCAN3"))
    ]
    assert not mcan_lcan_structural, mcan_lcan_structural


def test_bus_utilization_stays_sane_under_load():
    net = CanelyNetwork(node_count=8, config=CONFIG)
    net.scenario().bootstrap()
    for node_id in net.nodes:
        PeriodicSource(net.sim, net.node(node_id), period=ms(5))
    start_bits = net.bus.stats.busy_bits
    start_time = net.sim.now
    net.run_for(ms(500))
    window_bits = net.bus.stats.busy_bits - start_bits
    window_ticks = net.sim.now - start_time
    utilization = net.bus.timing.bits_to_ticks(window_bits) / window_ticks
    # 8 nodes * (one ~130-bit frame / 5 ms) ~ 21% + protocol overhead.
    assert 0.1 < utilization < 0.5


def test_deterministic_replay_with_faults():
    def run():
        injector = FaultInjector(
            rng=random.Random(5),
            consistent_probability=0.02,
            inconsistent_probability=0.005,
        )
        net = CanelyNetwork(node_count=6, config=CONFIG, injector=injector)
        net.join_all()
        net.run_for(ms(600))
        return [
            (r.time, r.node, r.category)
            for r in net.sim.trace.select(category="msh.")
        ]

    assert run() == run()
