"""Integration: the reliable broadcast suite alongside the membership stack."""

import random

from repro.can.errormodel import FaultInjector
from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.llc.edcan import Edcan
from repro.llc.relcan import Relcan
from repro.llc.totcan import Totcan
from repro.can.identifiers import MessageType
from repro.sim.clock import ms

CONFIG = CanelyConfig(capacity=32, tm=ms(50), tjoin_wait=ms(150))


def test_edcan_over_live_membership_network():
    """EDCAN traffic doubles as implicit life-signs for the detector."""
    net = CanelyNetwork(node_count=5, config=CONFIG)
    net.scenario().bootstrap()
    edcan = {
        n: Edcan(net.node(n).layer, inconsistent_degree=CONFIG.inconsistent_degree)
        for n in net.nodes
    }
    delivered = {n: [] for n in net.nodes}
    for n, protocol in edcan.items():
        protocol.on_deliver(lambda s, r, d, n=n: delivered[n].append((s, r)))
    for sender in range(5):
        edcan[sender].broadcast(bytes([sender]))
    net.run_for(ms(50))
    for log in delivered.values():
        assert len(log) == 5
    assert net.views_agree()


def test_relcan_under_stochastic_faults():
    rng = random.Random(7)
    injector = FaultInjector(
        rng=rng, consistent_probability=0.05, inconsistent_probability=0.02
    )
    net = CanelyNetwork(node_count=4, config=CONFIG, injector=injector)
    net.scenario().bootstrap()
    relcan = {
        n: Relcan(net.node(n).layer, net.node(n).timers, confirm_timeout=ms(10))
        for n in net.nodes
    }
    delivered = {n: set() for n in net.nodes}
    for n, protocol in relcan.items():
        protocol.on_deliver(lambda s, r, d, n=n: delivered[n].add((s, r)))
    expected = set()
    for sender in range(4):
        for _ in range(3):
            ref = relcan[sender].broadcast(bytes([sender]))
            expected.add((sender, ref))
    net.run_for(ms(200))
    for n, got in delivered.items():
        assert got == expected, f"node {n} missed {expected - got}"


def test_totcan_order_with_membership_traffic_interleaved():
    net = CanelyNetwork(node_count=4, config=CONFIG)
    net.scenario().bootstrap()
    totcan = {
        n: Totcan(
            net.node(n).layer,
            net.node(n).timers,
            net.sim,
            stability_delay=ms(3),
            discard_timeout=ms(20),
        )
        for n in net.nodes
    }
    orders = {n: [] for n in net.nodes}
    for n, protocol in totcan.items():
        protocol.on_deliver(lambda s, r, d, n=n: orders[n].append((s, r)))
    # Interleave atomic broadcasts with a membership change.
    for sender in range(4):
        totcan[sender].broadcast(bytes([sender]))
    net.node(3).leave()
    net.run_for(ms(300))
    reference = orders[0]
    assert len(reference) == 4
    for n in (1, 2):
        assert orders[n] == reference
    assert sorted(net.agreed_view()) == [0, 1, 2]
