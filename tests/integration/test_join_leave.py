"""Integration: join/leave handling, including the RHA agreement paths."""

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import ms

CONFIG = CanelyConfig(capacity=64, tm=ms(50), tjoin_wait=ms(150))


def test_massive_join_leave_c20():
    """The paper's 'multiple join/leave' scenario: c = 20 requests."""
    net = CanelyNetwork(node_count=32, config=CONFIG)
    for node_id in range(22):
        net.node(node_id).join()
    net.run_for(ms(500))
    assert sorted(net.agreed_view()) == list(range(22))
    # 10 joins + 10 leaves in the same cycle.
    for node_id in range(22, 32):
        net.node(node_id).join()
    for node_id in range(10):
        net.node(node_id).leave()
    net.run_for(ms(300))
    assert net.views_agree()
    assert sorted(net.agreed_view()) == list(range(10, 32))


def test_leaver_rejoins_later():
    net = CanelyNetwork(node_count=4, config=CONFIG)
    net.scenario().bootstrap()
    net.node(2).leave()
    net.run_for(ms(250))
    assert sorted(net.agreed_view()) == [0, 1, 3]
    net.run_for(ms(250))  # "much later"
    net.node(2).join()
    net.run_for(ms(250))
    assert sorted(net.agreed_view()) == [0, 1, 2, 3]


def test_join_and_crash_in_same_cycle():
    net = CanelyNetwork(node_count=6, config=CONFIG)
    for node_id in range(5):
        net.node(node_id).join()
    net.run_for(ms(400))
    net.node(5).join()
    net.node(3).crash()
    net.run_for(ms(250))
    assert net.views_agree()
    assert sorted(net.agreed_view()) == [0, 1, 2, 4, 5]


def test_joiner_crashes_before_integration():
    net = CanelyNetwork(node_count=5, config=CONFIG)
    for node_id in range(4):
        net.node(node_id).join()
    net.run_for(ms(400))
    net.node(4).join()
    net.node(4).crash()  # dies immediately after requesting
    net.run_for(ms(300))
    assert net.views_agree()
    view = sorted(net.agreed_view())
    # Either it never made it in, or it was detected and removed; it must
    # not linger in anyone's view.
    assert 4 not in view


def test_unsatisfied_join_retired_within_two_cycles():
    """Fig. 9 footnote 10: V'j retires a join that never succeeds."""
    net = CanelyNetwork(node_count=5, config=CONFIG)
    net.scenario().bootstrap(settle_cycles=4)
    # Forge a join request perception for a node that will never answer
    # (node id 40 does not exist on the bus).
    from repro.util.sets import NodeSet

    for node in net.nodes.values():
        node.state.joining = node.state.joining.add(40)
    net.run_for(ms(300))  # several cycles
    for node in net.nodes.values():
        assert 40 not in node.state.joining
        assert 40 not in node.state.view or not node.is_member


def test_all_leave_then_rebootstrap():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    net.scenario().bootstrap()
    for node in net.nodes.values():
        node.leave()
    net.run_for(ms(300))
    assert all(not node.is_member for node in net.nodes.values())
    # The system restarts from scratch.
    net.join_all()
    net.run_for(ms(400))
    assert sorted(net.agreed_view()) == [0, 1, 2]


def test_interleaved_leaves_across_cycles():
    net = CanelyNetwork(node_count=8, config=CONFIG)
    net.scenario().bootstrap()
    expected = set(range(8))
    for node_id in (7, 6, 5):
        net.node(node_id).leave()
        expected.discard(node_id)
        net.run_for(ms(150))
        assert net.views_agree()
        assert set(net.agreed_view()) == expected
