"""Integration: the paper's core failure mode — inconsistent omissions
hitting protocol traffic — must never break view agreement."""

from repro.can.errormodel import FaultInjector, FaultKind
from repro.can.identifiers import MessageType
from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import ms

CONFIG = CanelyConfig(capacity=64, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))


def make_net(node_count, injector):
    return CanelyNetwork(node_count=node_count, config=CONFIG, injector=injector)


def bootstrap(net):
    net.join_all()
    net.run_for(ms(500))
    assert net.views_agree()


def test_inconsistent_join_request_still_agrees():
    """A JOIN remote frame seen by a subset only: RHA's intersection keeps
    the views consistent; the join completes in a later cycle."""
    injector = FaultInjector()
    injector.fault_on_frame(
        lambda f: f.mid.mtype is MessageType.JOIN and f.mid.node == 5,
        FaultKind.INCONSISTENT_OMISSION,
        accepting=[0, 1],
    )
    net = make_net(6, injector)
    for node_id in range(5):
        net.node(node_id).join()
    net.run_for(ms(400))
    net.node(5).join()
    net.run_for(ms(400))
    assert net.views_agree()
    assert 5 in net.agreed_view()  # the retry (CAN or next cycle) admits it


def test_inconsistent_leave_request_still_agrees():
    injector = FaultInjector()
    injector.fault_on_frame(
        lambda f: f.mid.mtype is MessageType.LEAVE,
        FaultKind.INCONSISTENT_OMISSION,
        accepting=[0],
    )
    net = make_net(5, injector)
    bootstrap(net)
    net.node(4).leave()
    net.run_for(ms(300))
    assert net.views_agree()
    assert 4 not in net.agreed_view()


def test_inconsistent_fda_with_detector_crash():
    """Failure-sign hit by an inconsistent omission while its sender (the
    detecting node) crashes: FDA's eager diffusion still notifies all."""
    injector = FaultInjector()
    injector.fault_on_frame(
        lambda f: f.mid.mtype is MessageType.FDA,
        FaultKind.INCONSISTENT_OMISSION,
        accepting=[2],
        crash_sender=True,
    )
    net = make_net(8, injector)
    bootstrap(net)
    net.node(7).crash()
    net.run_for(ms(300))
    assert net.views_agree()
    view = set(net.agreed_view())
    assert 7 not in view
    # The detector that crashed mid-FDA is gone too; everyone agrees on
    # whichever subset survived.
    for node in net.correct_nodes():
        if node.is_member:
            assert node.view().members == net.agreed_view()


def test_inconsistent_rha_signal_converges():
    injector = FaultInjector()
    injector.fault_on_frame(
        lambda f: f.mid.mtype is MessageType.RHA,
        FaultKind.INCONSISTENT_OMISSION,
        accepting=[1, 2],
        count=2,
    )
    net = make_net(6, injector)
    for node_id in range(5):
        net.node(node_id).join()
    net.run_for(ms(400))
    net.node(5).join()
    net.run_for(ms(400))
    assert net.views_agree()


def test_consistent_errors_on_els_tolerated():
    injector = FaultInjector()
    injector.fault_on_frame(
        lambda f: f.mid.mtype is MessageType.ELS,
        FaultKind.CONSISTENT_OMISSION,
        count=5,
    )
    net = make_net(4, injector)
    bootstrap(net)
    net.run_for(ms(300))
    assert net.views_agree()
    assert sorted(net.agreed_view()) == [0, 1, 2, 3]  # retries mask the loss


def test_omission_burst_within_bound_no_false_suspicion():
    """k consecutive corrupted frames (MCAN3's bound) must not evict a
    live node: CAN retransmission masks them within Ttd."""
    injector = FaultInjector()
    injector.fault_on_frame(
        lambda f: True, FaultKind.CONSISTENT_OMISSION, count=CONFIG.omission_degree
    )
    net = make_net(4, injector)
    net.join_all()
    net.run_for(ms(600))
    assert net.views_agree()
    assert sorted(net.agreed_view()) == [0, 1, 2, 3]
