"""Integration: cold-start bootstrap at realistic populations."""

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.llc.properties import check_all_properties
from repro.sim.clock import ms

CONFIG = CanelyConfig(capacity=64, tm=ms(50), tjoin_wait=ms(150))


def test_bootstrap_paper_population():
    """n=32 — the population of the paper's Fig. 10 evaluation."""
    net = CanelyNetwork(node_count=32, config=CONFIG)
    net.join_all()
    net.run_for(ms(500))
    assert net.views_agree()
    assert sorted(net.agreed_view()) == list(range(32))


def test_bootstrap_staggered_over_a_cycle():
    net = CanelyNetwork(node_count=8, config=CONFIG)
    for node_id in range(8):
        net.sim.schedule_at(ms(6 * node_id), net.node(node_id).join)
    net.run_for(ms(600))
    assert sorted(net.agreed_view()) == list(range(8))


def test_bootstrap_in_two_waves():
    net = CanelyNetwork(node_count=10, config=CONFIG)
    for node_id in range(5):
        net.node(node_id).join()
    net.run_for(ms(400))
    assert sorted(net.agreed_view()) == [0, 1, 2, 3, 4]
    for node_id in range(5, 10):
        net.node(node_id).join()
    net.run_for(ms(250))
    assert sorted(net.agreed_view()) == list(range(10))


def test_single_node_network_bootstraps_alone():
    net = CanelyNetwork(node_count=1, config=CONFIG)
    net.node(0).join()
    net.run_for(ms(400))
    assert net.node(0).is_member
    assert sorted(net.node(0).view().members) == [0]


def test_everyone_monitors_everyone_after_bootstrap():
    net = CanelyNetwork(node_count=6, config=CONFIG)
    net.join_all()
    net.run_for(ms(500))
    for node in net.nodes.values():
        assert node.detector.monitored_nodes == list(range(6))


def test_substrate_properties_hold_through_bootstrap():
    net = CanelyNetwork(node_count=12, config=CONFIG)
    net.join_all()
    net.run_for(ms(500))
    report = check_all_properties(
        net.sim.trace,
        correct_nodes=range(12),
        omission_degree=CONFIG.omission_degree,
        inconsistent_degree=CONFIG.inconsistent_degree,
        window=CONFIG.reference_window,
    )
    assert report.ok, report.violations


def test_bootstrap_deterministic():
    def views(seed_ignored):
        net = CanelyNetwork(node_count=6, config=CONFIG)
        net.join_all()
        net.run_for(ms(500))
        return [
            (record.time, record.node, tuple(sorted(record.data["members"])))
            for record in net.sim.trace.select(category="msh.view")
        ]

    assert views(0) == views(1)  # identical runs, event for event


def test_industrial_bit_rate_scaled_config():
    """A 250 kbit/s network with proportionally scaled periods behaves
    like the 1 Mbps default (the scaled_to_bit_rate contract)."""
    from repro.can.phy import BitTiming

    config = CanelyConfig.scaled_to_bit_rate(250_000, reference=CONFIG)
    net = CanelyNetwork(
        node_count=6, config=config, timing=BitTiming(bit_rate=250_000)
    )
    net.join_all()
    net.run_for(config.tjoin_wait + 5 * config.tm)
    assert net.views_agree()
    assert sorted(net.agreed_view()) == list(range(6))
    net.node(2).crash()
    net.run_for(2 * (config.thb + config.ttd) + 2 * config.tm)
    assert sorted(net.agreed_view()) == [0, 1, 3, 4, 5]
