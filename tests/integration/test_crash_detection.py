"""Integration: node crash detection and consistent view updates."""

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import ms
from repro.workloads.scenarios import detection_latencies
from repro.workloads.traffic import PeriodicSource

CONFIG = CanelyConfig(capacity=64, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))


def test_detection_latency_is_tens_of_ms():
    """Fig. 11's membership row: CANELy latency in the tens of ms."""
    net = CanelyNetwork(node_count=8, config=CONFIG)
    net.scenario().bootstrap()
    crash_time = net.sim.now
    net.node(5).crash()
    net.run_for(ms(200))
    latency = detection_latencies(net, {5: crash_time})[5]
    assert latency is not None
    assert latency <= CONFIG.thb + CONFIG.ttd + ms(5)


def test_f_crashes_in_one_cycle():
    """The paper's harsh scenario: f = 4 nodes fail within one cycle."""
    net = CanelyNetwork(node_count=12, config=CONFIG)
    net.scenario().bootstrap()
    crash_time = net.sim.now
    for node_id in (2, 5, 7, 11):
        net.node(node_id).crash()
    net.run_for(ms(250))
    assert net.views_agree()
    assert sorted(net.agreed_view()) == [0, 1, 3, 4, 6, 8, 9, 10]
    latencies = detection_latencies(
        net, {n: crash_time for n in (2, 5, 7, 11)}
    )
    assert all(latency is not None for latency in latencies.values())


def test_cascading_crashes_across_cycles():
    net = CanelyNetwork(node_count=8, config=CONFIG)
    net.scenario().bootstrap()
    expected = set(range(8))
    for node_id in (1, 3, 6):
        net.node(node_id).crash()
        expected.discard(node_id)
        net.run_for(ms(120))
        assert net.views_agree()
        assert set(net.agreed_view()) == expected


def test_detector_of_detector_crashing():
    """The first detector crashes right after requesting FDA — the sign
    still reaches everyone (FDA's whole purpose)."""
    net = CanelyNetwork(node_count=6, config=CONFIG)
    net.scenario().bootstrap()
    net.node(5).crash()
    # Crash node 0 the instant the first FDA frame appears on the bus.
    fda_seen = []

    def watch():
        frames = [
            r
            for r in net.sim.trace.select(category="bus.tx")
            if r.data["mid"].mtype.name == "FDA"
        ]
        if frames and not fda_seen:
            fda_seen.append(frames[0].time)
            net.node(0).crash()
        if not fda_seen:
            net.sim.schedule(ms(1), watch)

    net.sim.schedule(ms(1), watch)
    net.run_for(ms(300))
    assert net.views_agree()
    assert set(net.agreed_view()) <= {1, 2, 3, 4}


def test_implicit_lifesigns_carry_detection():
    """With fast periodic traffic no ELS is ever sent, yet crashes are
    detected just as quickly."""
    net = CanelyNetwork(node_count=5, config=CONFIG)
    net.scenario().bootstrap()
    sources = [
        PeriodicSource(net.sim, net.node(n), period=ms(5)) for n in range(5)
    ]
    net.run_for(ms(100))
    els_before = sum(node.detector.els_sent for node in net.nodes.values())
    crash_time = net.sim.now
    net.node(4).crash()
    net.run_for(ms(100))
    latency = detection_latencies(net, {4: crash_time})[4]
    assert latency is not None and latency <= ms(20)
    els_after = sum(node.detector.els_sent for node in net.nodes.values())
    assert els_after == els_before  # implicit life-signs did all the work


def test_majority_crash():
    net = CanelyNetwork(node_count=6, config=CONFIG)
    net.scenario().bootstrap()
    for node_id in (0, 1, 2, 3):
        net.node(node_id).crash()
    net.run_for(ms(300))
    assert net.views_agree()
    assert sorted(net.agreed_view()) == [4, 5]
