"""Soak: a long simulated run must stay stable and memory-bounded.

Protocol dedup tables (EDCAN duplicates, TOTCAN tombstones, dual-channel
twin suppression) must not grow with uptime, and the membership service
must still be correct after tens of simulated seconds of heavy traffic.
"""

from repro.can.channels import DualChannelLayer
from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork, DualChannelNetwork
from repro.llc.edcan import Edcan, MAX_TRACKED_MESSAGES
from repro.sim.clock import ms, sec
from repro.workloads.traffic import PeriodicSource

CONFIG = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))


def test_membership_stable_over_thirty_seconds():
    net = CanelyNetwork(node_count=8, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    for node_id in net.nodes:
        PeriodicSource(net.sim, net.node(node_id), period=ms(20))
    net.run_for(sec(30))
    assert net.views_agree()
    assert sorted(net.agreed_view()) == list(range(8))
    # No spurious protocol traffic accumulated: quiescent cycles ran
    # without RHA, failures without cause never signalled.
    fda_frames = [
        r
        for r in net.sim.trace.select(category="bus.tx")
        if r.data["mid"].mtype.name == "FDA"
    ]
    assert fda_frames == []


def test_edcan_tables_bounded():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    edcan = {n: Edcan(net.node(n).layer) for n in net.nodes}
    # Far more messages than the tracking cap.
    for burst in range(40):
        for _ in range(200):
            edcan[0].broadcast(b"x")
        net.run_for(ms(200))
    assert len(edcan[1]._ndup) <= MAX_TRACKED_MESSAGES
    assert len(edcan[1]._payload) <= MAX_TRACKED_MESSAGES


def test_dual_channel_suppression_table_bounded():
    net = DualChannelNetwork(node_count=4, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    for node_id in net.nodes:
        PeriodicSource(net.sim, net.node(node_id), period=ms(5))
    net.run_for(sec(10))
    for node in net.nodes.values():
        layer = node.layer
        assert isinstance(layer, DualChannelLayer)
        assert len(layer._last_seen) <= 4096
    assert net.views_agree()


def test_timer_population_bounded():
    """Armed alarms must not accumulate: each node holds its surveillance
    timers, the cycle timer and transient protocol alarms only."""
    net = CanelyNetwork(node_count=8, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    net.run_for(sec(10))
    for node in net.nodes.values():
        # 8 surveillance timers + cycle timer + a few transient alarms.
        assert node.timers.pending_count <= 12, node.timers.pending_count
