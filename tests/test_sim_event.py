"""Unit tests for the event queue."""

from repro.sim.event import Event, EventQueue


def test_push_pop_single():
    queue = EventQueue()
    fired = []
    queue.push(10, lambda: fired.append(1))
    event = queue.pop()
    assert event.time == 10
    event.action()
    assert fired == [1]


def test_pop_empty_returns_none():
    assert EventQueue().pop() is None


def test_time_ordering():
    queue = EventQueue()
    queue.push(30, lambda: None)
    queue.push(10, lambda: None)
    queue.push(20, lambda: None)
    times = [queue.pop().time for _ in range(3)]
    assert times == [10, 20, 30]


def test_fifo_tie_break_at_same_time():
    queue = EventQueue()
    order = []
    queue.push(5, lambda: order.append("first"))
    queue.push(5, lambda: order.append("second"))
    queue.push(5, lambda: order.append("third"))
    while (event := queue.pop()) is not None:
        event.action()
    assert order == ["first", "second", "third"]


def test_priority_beats_insertion_order():
    queue = EventQueue()
    order = []
    queue.push(5, lambda: order.append("low"), priority=1)
    queue.push(5, lambda: order.append("high"), priority=0)
    while (event := queue.pop()) is not None:
        event.action()
    assert order == ["high", "low"]


def test_cancelled_event_is_skipped():
    queue = EventQueue()
    event = queue.push(1, lambda: None)
    queue.push(2, lambda: None)
    event.cancel()
    assert queue.pop().time == 2


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(1, lambda: None)
    queue.push(7, lambda: None)
    assert queue.peek_time() == 1
    first.cancel()
    assert queue.peek_time() == 7


def test_peek_time_empty():
    assert EventQueue().peek_time() is None


def test_len_and_bool():
    queue = EventQueue()
    assert not queue
    assert len(queue) == 0
    queue.push(1, lambda: None)
    assert queue
    assert len(queue) == 1


def test_clear():
    queue = EventQueue()
    queue.push(1, lambda: None)
    queue.clear()
    assert queue.pop() is None


def test_len_excludes_cancelled():
    queue = EventQueue()
    keep = queue.push(1, lambda: None)
    drop = queue.push(2, lambda: None)
    drop.cancel()
    assert len(queue) == 1
    assert bool(queue)
    keep.cancel()
    assert len(queue) == 0
    assert not queue


def test_cancel_is_idempotent_for_the_count():
    queue = EventQueue()
    queue.push(1, lambda: None)
    event = queue.push(2, lambda: None)
    event.cancel()
    event.cancel()  # double cancel must not double-count
    assert len(queue) == 1


def test_cancel_after_pop_does_not_skew_count():
    queue = EventQueue()
    event = queue.push(1, lambda: None)
    queue.push(2, lambda: None)
    popped = queue.pop()
    assert popped is event
    event.cancel()  # the event already left the queue
    assert len(queue) == 1


def test_lazy_purge_compacts_dominating_dead_entries():
    queue = EventQueue()
    events = [queue.push(t, lambda: None) for t in range(200)]
    for event in events[:150]:
        event.cancel()
    # The purge rebuilt the heap: far fewer entries than were pushed.
    assert len(queue._heap) < 100
    assert len(queue) == 50
    times = []
    while (event := queue.pop()) is not None:
        times.append(event.time)
    assert times == list(range(150, 200))


def test_cancel_after_clear_is_safe():
    """clear() orphans its events; cancelling one later must neither raise
    nor corrupt the live count of events pushed afterwards."""
    queue = EventQueue()
    orphan = queue.push(1, lambda: None)
    queue.push(2, lambda: None)
    queue.clear()
    assert len(queue) == 0
    survivor = queue.push(3, lambda: None)
    orphan.cancel()  # already detached by clear(): a no-op
    assert len(queue) == 1
    assert queue.pop() is survivor
    assert queue.pop() is None


def test_clear_resets_cancelled_bookkeeping():
    queue = EventQueue()
    events = [queue.push(t, lambda: None) for t in range(10)]
    for event in events[:4]:
        event.cancel()
    queue.clear()
    assert len(queue) == 0
    assert queue._cancelled == 0
    queue.push(1, lambda: None)
    assert len(queue) == 1


def test_pop_all_after_mixed_cancellations():
    queue = EventQueue()
    events = [queue.push(t, lambda: None) for t in range(20)]
    for event in events[::2]:
        event.cancel()
    assert len(queue) == 10
    remaining = []
    while (event := queue.pop()) is not None:
        remaining.append(event.time)
    assert remaining == list(range(1, 20, 2))
    assert len(queue) == 0
