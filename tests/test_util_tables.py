"""Unit tests for the table renderer."""

import pytest

from repro.util.tables import render_table


def test_basic_rendering():
    out = render_table(["a", "bb"], [[1, 2], [30, 40]])
    lines = out.splitlines()
    assert lines[0].startswith("a")
    assert "--" in lines[1]
    assert "30" in lines[3]


def test_title_included():
    out = render_table(["x"], [[1]], title="My Table")
    assert out.splitlines()[0] == "My Table"


def test_column_width_fits_widest_cell():
    out = render_table(["h"], [["wide-cell"]])
    header_line = out.splitlines()[0]
    assert len(header_line) == len("wide-cell")


def test_mismatched_row_raises():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [[1]])


def test_cells_are_stringified():
    out = render_table(["v"], [[3.14]])
    assert "3.14" in out


def test_empty_rows_ok():
    out = render_table(["a"], [])
    assert len(out.splitlines()) == 2  # header + separator
