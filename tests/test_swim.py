"""SWIM backend specifics: configuration and the suspicion sub-protocol.

The backend-neutral semantics (join/leave/detection/conformance) live in
``tests/test_membership_backend.py``; this module pins what is *SWIM*
about the rival stack — the :class:`~repro.swim.config.SwimConfig`
validation and CANELy mapping, the suspect/refute cycle that keeps a
slow-but-alive member in the view, the auto-rejoin flap after a false
confirmation, and the dead-incarnation gate that keeps stale traffic from
resurrecting a confirmed failure. The flap and gating tests are
white-box: they inject forged SWIM frames on the bus.
"""

import pytest

from repro.can.controller import CanController
from repro.can.driver import CanStandardLayer
from repro.can.identifiers import MessageId, MessageType
from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.errors import ConfigurationError
from repro.sim.clock import ms
from repro.swim import SwimBackend, SwimConfig
from repro.swim import protocol as swim_protocol


# -- configuration -------------------------------------------------------------


def test_defaults_are_valid_and_wide():
    config = SwimConfig()
    assert config.capacity == 64
    SwimConfig(capacity=256)  # MID space, beyond CANELy's 64-node wire cap


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(capacity=0),
        dict(capacity=257),
        dict(probe_period=0),
        dict(fail_after=-1),
        dict(suspicion_timeout=0),
        dict(join_wait=0),
        # cross-field: every window must exceed the probe period
        dict(probe_period=ms(10), fail_after=ms(10)),
        dict(probe_period=ms(10), suspicion_timeout=ms(5)),
        dict(probe_period=ms(10), join_wait=ms(10)),
    ],
)
def test_invalid_configurations_are_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        SwimConfig(**kwargs)


def test_from_canely_maps_the_surveillance_bounds():
    canely = CanelyConfig(
        capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150)
    )
    config = SwimConfig.from_canely(canely)
    assert config.capacity == canely.capacity
    assert config.probe_period == canely.thb
    assert config.fail_after == canely.thb + canely.ttd
    assert config.suspicion_timeout == canely.thb + canely.ttd
    assert config.join_wait == canely.tjoin_wait
    override = SwimConfig.from_canely(canely, suspicion_timeout=ms(40))
    assert override.suspicion_timeout == ms(40)


def test_scenario_compatibility_properties():
    config = SwimConfig()
    assert config.tm == config.probe_period
    assert config.tjoin_wait == config.join_wait
    assert config.detection_latency_bound == (
        config.fail_after + config.suspicion_timeout + config.probe_period
    )


def test_coerce_config_accepts_none_native_and_canely():
    assert SwimBackend.coerce_config(None) == SwimConfig()
    native = SwimConfig(capacity=8)
    assert SwimBackend.coerce_config(native) is native
    canely = CanelyConfig(capacity=8, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))
    derived = SwimBackend.coerce_config(canely)
    assert derived.capacity == 8
    assert derived.probe_period == canely.thb
    with pytest.raises(ConfigurationError):
        SwimBackend.coerce_config(object())


# -- suspicion sub-protocol ----------------------------------------------------


def _swim_net(nodes=4):
    """A converged SWIM population on one bus."""
    net = CanelyNetwork(node_count=nodes, backend="swim")
    net.join_all()
    net.run_for(net.config.tjoin_wait + round(6 * net.config.tm))
    return net


def test_mute_but_listening_member_refutes_and_stays_in_the_view():
    net = _swim_net()
    mute = net.node(3)
    # Stop the heartbeat/probe timers without crashing the controller:
    # the node falls silent but still hears (and refutes) suspicions.
    mute.backend.halt()
    net.run_for(ms(300))
    assert net.views_agree()
    assert sorted(net.agreed_view()) == [0, 1, 2, 3]
    assert net.node(0).protocol.suspicions > 0
    assert mute.protocol.refutes > 0
    assert net.sim.trace.select(category="swim.suspect")
    assert net.sim.trace.select(category="swim.refute")


def test_application_traffic_is_not_evidence_of_life():
    # The designed contrast with CANELy: there, application frames are
    # implicit life-signs; in SWIM only protocol messages count, so a
    # member that chats but never heartbeats is suspected regardless.
    net = _swim_net()
    chatty = net.node(2)
    chatty.backend.halt()
    for _ in range(30):
        chatty.send(b"alive")
        net.run_for(ms(10))
    assert net.node(0).protocol.suspicions > 0
    assert chatty.protocol.refutes > 0
    assert 2 in net.node(0).view().members  # survived via refutes alone


def test_false_confirmation_causes_the_documented_auto_rejoin_flap():
    net = _swim_net()
    victim = net.node(1)
    changes = []
    victim.on_membership_change(changes.append)
    # Forge a CONFIRM naming a perfectly healthy member at its current
    # incarnation — the classic SWIM false positive.
    accuser = net.node(0)
    accuser.protocol._broadcast(
        swim_protocol.CONFIRM, 1, victim.protocol._incarnation
    )
    net.run_for(ms(100))
    # The victim heard itself confirmed failed, bumped its incarnation
    # and rejoined; everyone readmits it — the view flaps but recovers.
    assert sorted(net.agreed_view()) == [0, 1, 2, 3]
    assert any(1 in change.failed for change in changes)
    assert any(
        1 in change.active and not change.failed for change in changes
    )
    observer_changes = [
        record
        for record in net.sim.trace.select(category="msh.change")
        if record.node == 2
    ]
    assert any(1 in record.data["failed"] for record in observer_changes)
    assert any(1 in record.data["active"] for record in observer_changes[-1:])


def test_dead_incarnation_cannot_resurrect_a_confirmed_failure():
    net = _swim_net()
    victim = net.node(3)
    stale_inc = victim.protocol._incarnation
    victim.crash()
    net.run_for(ms(400))
    assert sorted(net.agreed_view()) == [0, 1, 2]
    forger = CanStandardLayer(CanController(7))
    net.bus.attach(forger.controller)
    join_mid = MessageId(
        MessageType.SWIM, node=3, ref=(swim_protocol.JOIN << 8) | 3
    )
    # Stale traffic from the incarnation that was confirmed dead: gated.
    forger.data_req(join_mid, (stale_inc & 0xFFFF).to_bytes(2, "little"))
    net.run_for(ms(20))
    assert sorted(net.agreed_view()) == [0, 1, 2]
    # A strictly higher incarnation outranks the death record.
    forger.data_req(
        join_mid, ((stale_inc + 1) & 0xFFFF).to_bytes(2, "little")
    )
    net.run_for(ms(20))
    assert 3 in net.node(0).view().members


def test_protocol_metrics_flow_into_the_shared_registry():
    net = _swim_net()
    net.node(1).crash()
    net.run_for(ms(400))
    assert net.sim.metrics.counter("swim.heartbeats").value > 0
    assert net.sim.metrics.counter("swim.suspects").value > 0
    assert net.sim.metrics.counter("swim.removals").value > 0
    metrics = net.node(0).backend.metrics()
    assert metrics["removals"] >= 1
    assert metrics["heartbeats_sent"] > 0
