"""Unit tests for ASCII chart rendering."""

import pytest

from repro.analysis.figures import ascii_chart, fig10_chart
from repro.errors import ConfigurationError


def test_single_series_renders():
    chart = ascii_chart({"load": [(0, 0.0), (10, 0.5), (20, 1.0)]})
    lines = chart.splitlines()
    assert any("*" in line for line in lines)
    assert "* = load" in chart


def test_title_and_axis_labels():
    chart = ascii_chart(
        {"s": [(30, 0.02), (90, 0.01)]},
        title="curves",
        x_format="{:.0f}",
    )
    assert chart.splitlines()[0] == "curves"
    assert "30" in chart and "90" in chart
    assert "0.0%" in chart


def test_multiple_series_distinct_glyphs():
    chart = ascii_chart(
        {
            "a": [(0, 0.1), (1, 0.2)],
            "b": [(0, 0.3), (1, 0.4)],
        }
    )
    assert "* = a" in chart
    assert "o = b" in chart


def test_empty_series_rejected():
    with pytest.raises(ConfigurationError):
        ascii_chart({})
    with pytest.raises(ConfigurationError):
        ascii_chart({"a": []})


def test_tiny_grid_rejected():
    with pytest.raises(ConfigurationError):
        ascii_chart({"a": [(0, 1)]}, width=4, height=2)


def test_fig10_chart_contains_all_curves():
    chart = fig10_chart()
    for label in (
        "no msh. changes",
        "f crash failures",
        "join/leave event",
        "multiple join/leave",
    ):
        assert label in chart


def test_cli_fig10_plot(capsys):
    from repro.__main__ import main

    assert main(["fig10", "--plot"]) == 0
    out = capsys.readouterr().out
    assert "multiple join/leave" in out
    assert "|" in out


# -- QoS catalog figures -----------------------------------------------------


def _qos_report():
    from repro.scenarios import run_catalog

    return run_catalog(
        scenarios=["quiet-baseline"],
        backends=("canely", "swim"),
        seed=0,
        quick=True,
    )


def test_qos_detection_series_is_deterministic():
    """Same seed, same figure data — byte for byte."""
    import json

    from repro.analysis.figures import qos_detection_series

    first = json.dumps(qos_detection_series(_qos_report()), sort_keys=True)
    second = json.dumps(qos_detection_series(_qos_report()), sort_keys=True)
    assert first == second


def test_qos_detection_series_shape():
    from repro.analysis.figures import qos_detection_series

    series = qos_detection_series(_qos_report())
    assert set(series) == {"canely", "swim"}
    for points in series.values():
        assert points == [(0.0, points[0][1])]
        assert points[0][1] > 0


def test_qos_chart_renders_both_backends():
    from repro.analysis.figures import qos_chart

    chart = qos_chart(_qos_report())
    assert "canely" in chart
    assert "swim" in chart
    assert "Detection p50" in chart


def test_qos_chart_falls_back_without_samples():
    from repro.analysis.figures import qos_chart
    from repro.scenarios import run_catalog

    # The babbling-idiot recipe crashes nobody: no detection samples.
    report = run_catalog(
        scenarios=["babbling-idiot"], backends=("canely",), quick=True
    )
    assert "no detection samples" in qos_chart(report)


def test_save_qos_figure_gates_the_optional_dependency(tmp_path):
    """With matplotlib absent the renderer must raise the configuration
    error (pointing at the ASCII chart), never an ImportError; with it
    installed it must actually write the file."""
    from repro.analysis.figures import save_qos_figure
    from repro.errors import ConfigurationError

    target = tmp_path / "qos.png"
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        with pytest.raises(ConfigurationError, match="matplotlib"):
            save_qos_figure(_qos_report(), str(target))
    else:
        assert save_qos_figure(_qos_report(), str(target)) == str(target)
        assert target.stat().st_size > 0
