"""Unit tests for ASCII chart rendering."""

import pytest

from repro.analysis.figures import ascii_chart, fig10_chart
from repro.errors import ConfigurationError


def test_single_series_renders():
    chart = ascii_chart({"load": [(0, 0.0), (10, 0.5), (20, 1.0)]})
    lines = chart.splitlines()
    assert any("*" in line for line in lines)
    assert "* = load" in chart


def test_title_and_axis_labels():
    chart = ascii_chart(
        {"s": [(30, 0.02), (90, 0.01)]},
        title="curves",
        x_format="{:.0f}",
    )
    assert chart.splitlines()[0] == "curves"
    assert "30" in chart and "90" in chart
    assert "0.0%" in chart


def test_multiple_series_distinct_glyphs():
    chart = ascii_chart(
        {
            "a": [(0, 0.1), (1, 0.2)],
            "b": [(0, 0.3), (1, 0.4)],
        }
    )
    assert "* = a" in chart
    assert "o = b" in chart


def test_empty_series_rejected():
    with pytest.raises(ConfigurationError):
        ascii_chart({})
    with pytest.raises(ConfigurationError):
        ascii_chart({"a": []})


def test_tiny_grid_rejected():
    with pytest.raises(ConfigurationError):
        ascii_chart({"a": [(0, 1)]}, width=4, height=2)


def test_fig10_chart_contains_all_curves():
    chart = fig10_chart()
    for label in (
        "no msh. changes",
        "f crash failures",
        "join/leave event",
        "multiple join/leave",
    ):
        assert label in chart


def test_cli_fig10_plot(capsys):
    from repro.__main__ import main

    assert main(["fig10", "--plot"]) == 0
    out = capsys.readouterr().out
    assert "multiple join/leave" in out
    assert "|" in out
