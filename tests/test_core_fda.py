"""Unit tests for the FDA micro-protocol (paper Fig. 6)."""

import pytest

from repro.can.errormodel import FaultInjector, FaultKind
from repro.can.identifiers import MessageType
from repro.core.fda import FdaProtocol


def wire(net):
    protocols = {}
    notified = {}
    for node_id, layer in net.layers.items():
        protocol = FdaProtocol(layer)
        log = []
        protocol.on_failure_sign(log.append)
        protocols[node_id] = protocol
        notified[node_id] = log
    return protocols, notified


def test_failure_sign_notified_everywhere(raw_bus):
    net = raw_bus(4)
    protocols, notified = wire(net)
    protocols[0].request(3)
    net.sim.run()
    for node_id in net.layers:
        assert notified[node_id] == [3]


def test_notification_delivered_exactly_once(raw_bus):
    net = raw_bus(4)
    protocols, notified = wire(net)
    protocols[0].request(3)
    protocols[1].request(3)  # concurrent detection of the same failure
    net.sim.run()
    for log in notified.values():
        assert log == [3]


def test_clustering_keeps_frame_count_low(raw_bus):
    """s02/r05: one transmit request per node, merged on the wire."""
    net = raw_bus(6)
    protocols, _ = wire(net)
    protocols[0].request(3)
    net.sim.run()
    # Original + one clustered echo round.
    assert net.bus.stats.physical_frames <= 2


def test_repeated_request_sends_once(raw_bus):
    net = raw_bus(3)
    protocols, _ = wire(net)
    protocols[0].request(2)
    protocols[0].request(2)  # s01-s02: only the first issues a transmit
    net.sim.run()
    assert net.bus.stats.physical_frames <= 2


def test_survives_inconsistent_omission_with_sender_crash(raw_bus):
    """The whole point of FDA: consistent notification despite the
    detecting node crashing mid-dissemination."""
    injector = FaultInjector()
    injector.fault_on_frame(
        lambda f: f.mid.mtype is MessageType.FDA,
        FaultKind.INCONSISTENT_OMISSION,
        accepting=[2],
        crash_sender=True,
    )
    net = raw_bus(5, injector=injector)
    protocols, notified = wire(net)
    protocols[0].request(4)  # node 0 detects node 4's crash, then dies
    net.sim.run()
    for node_id in (1, 2, 3):
        assert notified[node_id] == [4], f"node {node_id} missed the sign"


def test_distinct_failures_distinct_signs(raw_bus):
    net = raw_bus(4)
    protocols, notified = wire(net)
    protocols[0].request(2)
    protocols[1].request(3)
    net.sim.run()
    for log in notified.values():
        assert sorted(log) == [2, 3]


def test_duplicates_seen_counter(raw_bus):
    net = raw_bus(3)
    protocols, _ = wire(net)
    protocols[0].request(2)
    net.sim.run()
    assert protocols[1].duplicates_seen(2) >= 1


def test_reset_allows_reuse_of_identifier(raw_bus):
    net = raw_bus(3)
    protocols, notified = wire(net)
    protocols[0].request(2)
    net.sim.run()
    for protocol in protocols.values():
        protocol.reset(2)
    protocols[1].request(2)  # the identifier fails again, much later
    net.sim.run()
    for log in notified.values():
        assert log == [2, 2]


def test_eviction_cycles_must_be_positive(raw_bus):
    net = raw_bus(2)
    with pytest.raises(ValueError):
        FdaProtocol(net.layers[0], eviction_cycles=0)


def test_untouched_counters_evicted_after_cycles(raw_bus):
    """Counters the membership layer never retires must not leak forever."""
    net = raw_bus(3)
    protocols, _ = wire(net)
    protocols[0].request(2)
    net.sim.run()
    assert all(p.tracked_mids >= 1 for p in protocols.values())
    evicted = 0
    for _ in range(4):  # DEFAULT_EVICTION_CYCLES
        for protocol in protocols.values():
            evicted += protocol.advance_cycle()
    assert evicted >= 1
    assert all(p.tracked_mids == 0 for p in protocols.values())


def test_touch_postpones_eviction(raw_bus):
    net = raw_bus(3)
    protocols, _ = wire(net)
    fda = protocols[0]
    fda.request(2)
    net.sim.run()
    for _ in range(3):
        fda.advance_cycle()
    fda.request(2)  # activity refreshes the last-touch cycle
    assert fda.advance_cycle() == 0
    assert fda.tracked_mids == 1
    for _ in range(3):
        fda.advance_cycle()
    assert fda.tracked_mids == 0


def test_eviction_allows_identifier_reuse(raw_bus):
    """After eviction a reused identifier notifies afresh, like reset."""
    net = raw_bus(3)
    protocols, notified = wire(net)
    protocols[0].request(2)
    net.sim.run()
    for protocol in protocols.values():
        for _ in range(4):
            protocol.advance_cycle()
    protocols[1].request(2)
    net.sim.run()
    for log in notified.values():
        assert log == [2, 2]


def test_reset_all_clears_touch_tracking(raw_bus):
    net = raw_bus(3)
    protocols, _ = wire(net)
    protocols[0].request(2)
    net.sim.run()
    protocols[0].reset_all()
    assert protocols[0].tracked_mids == 0


def test_uses_remote_frames_only(raw_bus):
    net = raw_bus(3)
    protocols, _ = wire(net)
    protocols[0].request(1)
    net.sim.run()
    for record in net.sim.trace.select(category="bus.tx"):
        assert record.data["remote"] is True
