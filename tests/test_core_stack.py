"""Unit tests for the CanelyNode / CanelyNetwork assembly."""

import pytest

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.errors import ConfigurationError, ProtocolError
from repro.sim.clock import ms

CONFIG = CanelyConfig(capacity=16, tm=ms(50), tjoin_wait=ms(150))


def test_network_builds_n_nodes():
    net = CanelyNetwork(node_count=5, config=CONFIG)
    assert sorted(net.nodes) == [0, 1, 2, 3, 4]
    assert net.node(3).node_id == 3


def test_node_count_bounded_by_capacity():
    with pytest.raises(ConfigurationError):
        CanelyNetwork(node_count=17, config=CONFIG)


def test_app_messages_delivered():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    received = []
    net.node(2).on_message(lambda s, r, d: received.append((s, r, d)))
    ref = net.node(0).send(b"payload")
    net.run_for(ms(5))
    assert received == [(0, ref, b"payload")]


def test_send_refs_wrap():
    net = CanelyNetwork(node_count=1, config=CONFIG)
    node = net.node(0)
    node._next_ref = 65535
    assert node.send(b"") == 65535
    assert node.send(b"") == 0


def test_app_traffic_suppresses_els():
    """Implicit life-signs: busy nodes never send explicit life-signs."""
    net = CanelyNetwork(node_count=2, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))

    def chatter():
        for node in net.nodes.values():
            node.send(b"")
        net.sim.schedule(ms(4), chatter)

    chatter()
    els_before = net.node(0).detector.els_sent
    net.run_for(ms(200))
    assert net.node(0).detector.els_sent == els_before


def test_crash_and_recover_cycle():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    net.node(1).crash()
    assert net.node(1).crashed
    net.run_for(ms(200))
    net.node(1).recover()
    assert not net.node(1).crashed
    assert not net.node(1).is_member  # silent until it rejoins


def test_recover_requires_crash():
    net = CanelyNetwork(node_count=1, config=CONFIG)
    with pytest.raises(ProtocolError):
        net.node(0).recover()


def test_correct_nodes_excludes_crashed():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    net.node(0).crash()
    assert [n.node_id for n in net.correct_nodes()] == [1, 2]


def test_agreed_view_empty_before_bootstrap():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    assert not net.agreed_view()


def test_agreed_view_raises_on_disagreement():
    net = CanelyNetwork(node_count=2, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    # Forge a divergent view to exercise the assertion helper.
    from repro.util.sets import NodeSet

    net.node(0).state.view = NodeSet([0], capacity=16)
    with pytest.raises(AssertionError):
        net.agreed_view()


def test_run_cycles_advances_tm_multiples():
    net = CanelyNetwork(node_count=1, config=CONFIG)
    net.run_cycles(2)
    assert net.sim.now == 2 * CONFIG.tm


def test_node_id_outside_capacity_rejected():
    from repro.core.stack import CanelyNode
    from repro.sim.kernel import Simulator
    from repro.can.bus import CanBus

    sim = Simulator()
    bus = CanBus(sim)
    with pytest.raises(ConfigurationError):
        CanelyNode(16, sim, bus, CONFIG)


def test_node_stats():
    net = CanelyNetwork(node_count=3, config=CONFIG)
    net.join_all()
    net.run_for(ms(400))
    stats = net.node(0).stats()
    assert stats["monitored_nodes"] == 3
    assert stats["view_round"] > 0
    assert stats["els_sent"] >= 0
    assert stats["rha_executions"] >= 1
