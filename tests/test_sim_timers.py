"""Unit tests for the start_alarm / cancel_alarm timer service."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.timers import TimerService


def make():
    sim = Simulator()
    return sim, TimerService(sim)


def test_alarm_fires_at_deadline():
    sim, timers = make()
    fired = []
    timers.start_alarm(100, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [100]


def test_cancel_before_expiry():
    sim, timers = make()
    fired = []
    alarm = timers.start_alarm(100, lambda: fired.append(1))
    timers.cancel_alarm(alarm)
    sim.run()
    assert fired == []


def test_cancel_none_is_noop():
    _, timers = make()
    timers.cancel_alarm(None)


def test_cancel_after_fire_is_noop():
    sim, timers = make()
    alarm = timers.start_alarm(10, lambda: None)
    sim.run()
    timers.cancel_alarm(alarm)  # must not raise


def test_is_pending_lifecycle():
    sim, timers = make()
    alarm = timers.start_alarm(10, lambda: None)
    assert timers.is_pending(alarm)
    sim.run()
    assert not timers.is_pending(alarm)


def test_is_pending_after_cancel():
    _, timers = make()
    alarm = timers.start_alarm(10, lambda: None)
    timers.cancel_alarm(alarm)
    assert not timers.is_pending(alarm)


def test_is_pending_none():
    _, timers = make()
    assert not timers.is_pending(None)


def test_pending_count():
    sim, timers = make()
    timers.start_alarm(10, lambda: None)
    timers.start_alarm(20, lambda: None)
    assert timers.pending_count == 2
    sim.run_until(15)
    assert timers.pending_count == 1


def test_alarm_ids_unique():
    _, timers = make()
    first = timers.start_alarm(10, lambda: None)
    second = timers.start_alarm(10, lambda: None)
    assert first.alarm_id != second.alarm_id


def test_deadline_recorded():
    sim, timers = make()
    sim.run_until(40)
    alarm = timers.start_alarm(60, lambda: None)
    assert alarm.deadline == 100


def test_negative_duration_rejected():
    _, timers = make()
    with pytest.raises(ValueError):
        timers.start_alarm(-1, lambda: None)


def test_zero_duration_fires_now_even_with_drift():
    sim = Simulator()
    timers = TimerService(sim, drift=1e-4)
    fired = []
    timers.start_alarm(0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [0]


def test_drift_stretches_duration():
    sim = Simulator()
    timers = TimerService(sim, drift=0.5)
    fired = []
    timers.start_alarm(100, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [150]


def test_fast_clock_never_rounds_a_duration_to_zero():
    """duration=1 with a fast oscillator must still fire strictly later."""
    sim = Simulator()
    timers = TimerService(sim, drift=-0.9)
    alarm = timers.start_alarm(1, lambda: None)
    assert alarm.deadline == 1


def test_sim_property_exposes_kernel():
    sim, timers = make()
    assert timers.sim is sim


def test_restart_pattern():
    """The failure-detector idiom: cancel + re-arm postpones expiry."""
    sim, timers = make()
    fired = []
    alarm = timers.start_alarm(100, lambda: fired.append(sim.now))
    sim.run_until(50)
    timers.cancel_alarm(alarm)
    timers.start_alarm(100, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [150]


# -- restart_alarm (the in-place surveillance rearm) --------------------------


def test_restart_alarm_defers_in_place():
    sim, timers = make()
    fired = []
    alarm = timers.start_alarm(100, lambda: fired.append(sim.now))
    sim.run_until(50)
    assert timers.restart_alarm(alarm, 100)
    assert alarm.deadline == 150
    sim.run()
    assert fired == [150]
    assert timers.pending_count == 0


def test_restart_alarm_keeps_handle_identity():
    sim, timers = make()
    alarm = timers.start_alarm(100, lambda: None)
    alarm_id = alarm.alarm_id
    assert timers.restart_alarm(alarm, 200)
    assert alarm.alarm_id == alarm_id
    assert timers.is_pending(alarm)


def test_restart_alarm_applies_drift():
    sim = Simulator()
    timers = TimerService(sim, drift=0.5)
    fired = []
    alarm = timers.start_alarm(100, lambda: fired.append(sim.now))
    assert timers.restart_alarm(alarm, 200)
    assert alarm.deadline == 300
    sim.run()
    assert fired == [300]


def test_restart_alarm_negative_duration_rejected():
    _, timers = make()
    alarm = timers.start_alarm(10, lambda: None)
    with pytest.raises(ValueError):
        timers.restart_alarm(alarm, -1)


def test_restart_alarm_refuses_none_and_inactive():
    sim, timers = make()
    assert not timers.restart_alarm(None, 10)
    fired_alarm = timers.start_alarm(10, lambda: None)
    sim.run()
    assert not timers.restart_alarm(fired_alarm, 10)
    cancelled_alarm = timers.start_alarm(10, lambda: None)
    timers.cancel_alarm(cancelled_alarm)
    assert not timers.restart_alarm(cancelled_alarm, 10)


def test_restart_alarm_refuses_earlier_deadline():
    sim, timers = make()
    alarm = timers.start_alarm(100, lambda: None)
    assert not timers.restart_alarm(alarm, 10)
    assert alarm.deadline == 100


def test_restart_alarm_refuses_legacy_queue():
    from repro.perf.legacy import LegacyEventQueue

    sim = Simulator()
    sim._queue = LegacyEventQueue()
    timers = TimerService(sim)
    alarm = timers.start_alarm(100, lambda: None)
    assert not timers.restart_alarm(alarm, 200)


def test_restart_alarm_refuses_when_spans_enabled():
    sim, timers = make()
    alarm = timers.start_alarm(100, lambda: None)
    sim.spans.enabled = True
    try:
        assert not timers.restart_alarm(alarm, 200)
    finally:
        sim.spans.enabled = False


def test_restart_alarm_honours_fast_rearm_toggle(monkeypatch):
    import repro.sim.timers as timers_mod

    monkeypatch.setattr(timers_mod, "FAST_REARM", False)
    sim, timers = make()
    alarm = timers.start_alarm(100, lambda: None)
    assert not timers.restart_alarm(alarm, 200)


def test_restart_equivalent_to_cancel_and_start():
    """Bit-identical outcome: restart vs the seed cancel-and-start idiom,
    including the interleaving with an independent same-deadline alarm."""

    def drive(use_restart):
        sim, timers = make()
        fired = []
        watched = timers.start_alarm(100, lambda: fired.append(("w", sim.now)))
        timers.start_alarm(150, lambda: fired.append(("peer", sim.now)))
        sim.run_until(50)
        if use_restart:
            assert timers.restart_alarm(watched, 100)
        else:
            timers.cancel_alarm(watched)
            timers.start_alarm(100, lambda: fired.append(("w", sim.now)))
        sim.run()
        return fired, sim.events_processed

    assert drive(True) == drive(False)
