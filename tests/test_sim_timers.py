"""Unit tests for the start_alarm / cancel_alarm timer service."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.timers import TimerService


def make():
    sim = Simulator()
    return sim, TimerService(sim)


def test_alarm_fires_at_deadline():
    sim, timers = make()
    fired = []
    timers.start_alarm(100, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [100]


def test_cancel_before_expiry():
    sim, timers = make()
    fired = []
    alarm = timers.start_alarm(100, lambda: fired.append(1))
    timers.cancel_alarm(alarm)
    sim.run()
    assert fired == []


def test_cancel_none_is_noop():
    _, timers = make()
    timers.cancel_alarm(None)


def test_cancel_after_fire_is_noop():
    sim, timers = make()
    alarm = timers.start_alarm(10, lambda: None)
    sim.run()
    timers.cancel_alarm(alarm)  # must not raise


def test_is_pending_lifecycle():
    sim, timers = make()
    alarm = timers.start_alarm(10, lambda: None)
    assert timers.is_pending(alarm)
    sim.run()
    assert not timers.is_pending(alarm)


def test_is_pending_after_cancel():
    _, timers = make()
    alarm = timers.start_alarm(10, lambda: None)
    timers.cancel_alarm(alarm)
    assert not timers.is_pending(alarm)


def test_is_pending_none():
    _, timers = make()
    assert not timers.is_pending(None)


def test_pending_count():
    sim, timers = make()
    timers.start_alarm(10, lambda: None)
    timers.start_alarm(20, lambda: None)
    assert timers.pending_count == 2
    sim.run_until(15)
    assert timers.pending_count == 1


def test_alarm_ids_unique():
    _, timers = make()
    first = timers.start_alarm(10, lambda: None)
    second = timers.start_alarm(10, lambda: None)
    assert first.alarm_id != second.alarm_id


def test_deadline_recorded():
    sim, timers = make()
    sim.run_until(40)
    alarm = timers.start_alarm(60, lambda: None)
    assert alarm.deadline == 100


def test_negative_duration_rejected():
    _, timers = make()
    with pytest.raises(ValueError):
        timers.start_alarm(-1, lambda: None)


def test_zero_duration_fires_now_even_with_drift():
    sim = Simulator()
    timers = TimerService(sim, drift=1e-4)
    fired = []
    timers.start_alarm(0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [0]


def test_drift_stretches_duration():
    sim = Simulator()
    timers = TimerService(sim, drift=0.5)
    fired = []
    timers.start_alarm(100, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [150]


def test_fast_clock_never_rounds_a_duration_to_zero():
    """duration=1 with a fast oscillator must still fire strictly later."""
    sim = Simulator()
    timers = TimerService(sim, drift=-0.9)
    alarm = timers.start_alarm(1, lambda: None)
    assert alarm.deadline == 1


def test_sim_property_exposes_kernel():
    sim, timers = make()
    assert timers.sim is sim


def test_restart_pattern():
    """The failure-detector idiom: cancel + re-arm postpones expiry."""
    sim, timers = make()
    fired = []
    alarm = timers.start_alarm(100, lambda: fired.append(sim.now))
    sim.run_until(50)
    timers.cancel_alarm(alarm)
    timers.start_alarm(100, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [150]
