"""Unit tests for the RHA micro-protocol (paper Fig. 7)."""

from repro.core.config import CanelyConfig
from repro.core.rha import RhaProtocol
from repro.core.state import MembershipState
from repro.sim.clock import ms
from repro.util.sets import NodeSet

CONFIG = CanelyConfig(capacity=16, tm=ms(50), trha=ms(5), tjoin_wait=ms(150))


def wire(net, views, joining=None, leaving=None):
    """Build one RHA entity per node with the given shared-state presets."""
    joining = joining or {}
    leaving = leaving or {}
    protocols, states, ends, inits = {}, {}, {}, {}
    for node_id, layer in net.layers.items():
        state = MembershipState(capacity=CONFIG.capacity)
        state.view = NodeSet(views.get(node_id, []), CONFIG.capacity)
        state.joining = NodeSet(joining.get(node_id, []), CONFIG.capacity)
        state.leaving = NodeSet(leaving.get(node_id, []), CONFIG.capacity)
        protocol = RhaProtocol(layer, net.timers[node_id], CONFIG, state)
        end_log, init_log = [], []
        protocol.on_end(end_log.append)
        protocol.on_init(lambda init_log=init_log: init_log.append(1))
        protocols[node_id] = protocol
        states[node_id] = state
        ends[node_id] = end_log
        inits[node_id] = init_log
    return protocols, states, ends, inits


def test_non_member_cannot_start(raw_bus):
    net = raw_bus(3)
    protocols, _, ends, inits = wire(net, views={})  # nobody is a member
    protocols[0].request()
    net.sim.run_until(ms(10))
    assert not protocols[0].running
    assert inits[0] == []


def test_agreement_on_identical_proposals(raw_bus):
    net = raw_bus(4)
    members = {n: [0, 1, 2, 3] for n in range(4)}
    protocols, _, ends, _ = wire(net, views=members, joining={n: [5] for n in range(4)})
    protocols[0].request()
    net.sim.run_until(ms(10))
    for node_id in range(4):
        assert len(ends[node_id]) == 1
        assert sorted(ends[node_id][0]) == [0, 1, 2, 3, 5]


def test_reception_triggers_participation(raw_bus):
    """Members that did not start locally join upon the first RHV signal."""
    net = raw_bus(3)
    members = {n: [0, 1, 2] for n in range(3)}
    protocols, _, ends, inits = wire(net, views=members)
    protocols[0].request()
    net.sim.run_until(ms(1))
    assert protocols[1].running and protocols[2].running
    assert inits[1] == [1] and inits[2] == [1]


def test_consensus_is_intersection_of_divergent_proposals(raw_bus):
    """Inconsistent join perception: the agreed RHV is the intersection."""
    net = raw_bus(3)
    members = {n: [0, 1, 2] for n in range(3)}
    # Node 0 saw node 5's join request; the others did not (inconsistent
    # omission on the JOIN remote frame).
    protocols, _, ends, _ = wire(
        net, views=members, joining={0: [5], 1: [], 2: []}
    )
    protocols[0].request()
    net.sim.run_until(ms(10))
    for node_id in range(3):
        assert sorted(ends[node_id][0]) == [0, 1, 2]


def test_leave_perceived_by_one_node_wins(raw_bus):
    """A leave seen anywhere removes the node (intersection semantics)."""
    net = raw_bus(3)
    members = {n: [0, 1, 2] for n in range(3)}
    protocols, _, ends, _ = wire(net, views=members, leaving={1: [2]})
    protocols[0].request()
    net.sim.run_until(ms(10))
    for node_id in range(3):
        assert sorted(ends[node_id][0]) == [0, 1]


def test_non_member_adopts_received_vector(raw_bus):
    net = raw_bus(4)
    members = {n: [0, 1, 2] for n in range(3)}  # node 3 is joining
    protocols, _, ends, _ = wire(
        net, views=members, joining={n: [3] for n in range(4)}
    )
    protocols[0].request()
    net.sim.run_until(ms(10))
    # Node 3 (non-member) delivered the same final vector as the members.
    assert sorted(ends[3][0]) == [0, 1, 2, 3]
    for node_id in range(3):
        assert ends[node_id][0] == ends[3][0]


def test_executions_and_termination(raw_bus):
    net = raw_bus(2)
    members = {n: [0, 1] for n in range(2)}
    protocols, _, ends, _ = wire(net, views=members)
    protocols[0].request()
    assert protocols[0].running
    net.sim.run_until(ms(10))
    assert not protocols[0].running
    assert protocols[0].executions == 1


def test_second_request_while_running_is_ignored(raw_bus):
    net = raw_bus(2)
    members = {n: [0, 1] for n in range(2)}
    protocols, _, ends, _ = wire(net, views=members)
    protocols[0].request()
    protocols[0].request()
    net.sim.run_until(ms(10))
    assert protocols[0].executions == 1
    assert len(ends[0]) == 1


def test_bandwidth_bounded_by_j_copies_per_value(raw_bus):
    """Fig. 7 r08: a value circulates in at most ~j+1 physical frames."""
    net = raw_bus(8)
    members = {n: list(range(8)) for n in range(8)}
    protocols, _, _, _ = wire(net, views=members, joining={n: [9] for n in range(8)})
    protocols[0].request()
    net.sim.run_until(ms(10))
    rha_frames = [
        r
        for r in net.sim.trace.select(category="bus.tx")
        if r.data["mid"].mtype.name == "RHA"
    ]
    assert len(rha_frames) <= CONFIG.inconsistent_degree + 2


def test_fresh_execution_after_end(raw_bus):
    net = raw_bus(2)
    members = {n: [0, 1] for n in range(2)}
    protocols, states, ends, _ = wire(net, views=members)
    protocols[0].request()
    net.sim.run_until(ms(10))
    states[0].joining = NodeSet([7], CONFIG.capacity)
    states[1].joining = NodeSet([7], CONFIG.capacity)
    protocols[0].request()
    net.sim.run_until(ms(20))
    assert len(ends[0]) == 2
    assert sorted(ends[0][1]) == [0, 1, 7]
