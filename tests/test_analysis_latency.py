"""Unit tests for the analytical latency bounds."""

from repro.analysis.latency import fda_dissemination_bound, latency_bounds
from repro.core.config import CanelyConfig
from repro.sim.clock import ms


def test_silence_bound_is_thb_plus_ttd():
    config = CanelyConfig(thb=ms(10), ttd=ms(6))
    bounds = latency_bounds(config)
    assert bounds.silence == ms(16)


def test_notification_bound_composition():
    config = CanelyConfig()
    bounds = latency_bounds(config)
    assert bounds.notification == bounds.silence + bounds.dissemination


def test_view_update_adds_one_cycle():
    config = CanelyConfig()
    bounds = latency_bounds(config)
    assert bounds.view_update == bounds.notification + config.tm


def test_dissemination_grows_with_j():
    low = CanelyConfig(inconsistent_degree=1)
    high = CanelyConfig(inconsistent_degree=4)
    assert fda_dissemination_bound(high) > fda_dissemination_bound(low)


def test_dissemination_scales_with_bit_rate():
    config = CanelyConfig()
    fast = fda_dissemination_bound(config, bit_rate=1_000_000)
    slow = fda_dissemination_bound(config, bit_rate=125_000)
    assert slow == 8 * fast


def test_dissemination_is_sub_millisecond_at_1mbps():
    """The FDA term is negligible next to the silence bound — the reason
    detection latency is governed by Thb."""
    config = CanelyConfig()
    assert fda_dissemination_bound(config) < ms(1)


def test_bounds_cover_measured_latency():
    """The bound must actually bound the simulator's measurement."""
    from repro.core.stack import CanelyNetwork
    from repro.workloads.scenarios import detection_latencies

    config = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))
    bounds = latency_bounds(config)
    net = CanelyNetwork(node_count=8, config=config)
    net.scenario().bootstrap()
    crash_time = net.sim.now
    net.node(5).crash()
    net.run_for(ms(200))
    measured = detection_latencies(net, {5: crash_time})[5]
    assert measured is not None
    assert measured <= bounds.notification


def test_crash_notification_times_one_change_feeds_every_victim():
    """Two crashes folded into one membership cycle: the single
    ``msh.change`` naming both must be attributed to each of them, per
    observer, and notifications predating a crash must be ignored."""
    from repro.analysis.latency import (
        crash_notification_times,
        measured_detection_latencies,
    )
    from repro.sim.trace import TraceRecorder

    trace = TraceRecorder()
    # A stale change naming node 1 before it actually crashed.
    trace.record(
        50, "msh.change", node=0,
        active=frozenset({0, 3}), failed=frozenset({1}),
    )
    # One cycle removes both victims, seen by two observers.
    trace.record(
        140, "msh.change", node=0,
        active=frozenset({0, 3}), failed=frozenset({1, 2}),
    )
    trace.record(
        160, "msh.change", node=3,
        active=frozenset({0, 3}), failed=frozenset({1, 2}),
    )
    notifications = crash_notification_times(trace, {1: 100, 2: 120})
    assert notifications == {
        1: {0: 140, 3: 160},
        2: {0: 140, 3: 160},
    }
    latencies = measured_detection_latencies(trace, {1: 100, 2: 120})
    assert latencies == {1: 40, 2: 20}


def test_measured_detection_latencies_none_when_never_notified():
    from repro.analysis.latency import measured_detection_latencies
    from repro.sim.trace import TraceRecorder

    trace = TraceRecorder()
    assert measured_detection_latencies(trace, {4: 100}) == {4: None}
