"""Unit tests for the analytical latency bounds."""

from repro.analysis.latency import fda_dissemination_bound, latency_bounds
from repro.core.config import CanelyConfig
from repro.sim.clock import ms


def test_silence_bound_is_thb_plus_ttd():
    config = CanelyConfig(thb=ms(10), ttd=ms(6))
    bounds = latency_bounds(config)
    assert bounds.silence == ms(16)


def test_notification_bound_composition():
    config = CanelyConfig()
    bounds = latency_bounds(config)
    assert bounds.notification == bounds.silence + bounds.dissemination


def test_view_update_adds_one_cycle():
    config = CanelyConfig()
    bounds = latency_bounds(config)
    assert bounds.view_update == bounds.notification + config.tm


def test_dissemination_grows_with_j():
    low = CanelyConfig(inconsistent_degree=1)
    high = CanelyConfig(inconsistent_degree=4)
    assert fda_dissemination_bound(high) > fda_dissemination_bound(low)


def test_dissemination_scales_with_bit_rate():
    config = CanelyConfig()
    fast = fda_dissemination_bound(config, bit_rate=1_000_000)
    slow = fda_dissemination_bound(config, bit_rate=125_000)
    assert slow == 8 * fast


def test_dissemination_is_sub_millisecond_at_1mbps():
    """The FDA term is negligible next to the silence bound — the reason
    detection latency is governed by Thb."""
    config = CanelyConfig()
    assert fda_dissemination_bound(config) < ms(1)


def test_bounds_cover_measured_latency():
    """The bound must actually bound the simulator's measurement."""
    from repro.core.stack import CanelyNetwork
    from repro.workloads.scenarios import detection_latencies

    config = CanelyConfig(capacity=16, tm=ms(50), thb=ms(10), tjoin_wait=ms(150))
    bounds = latency_bounds(config)
    net = CanelyNetwork(node_count=8, config=config)
    net.scenario().bootstrap()
    crash_time = net.sim.now
    net.node(5).crash()
    net.run_for(ms(200))
    measured = detection_latencies(net, {5: crash_time})[5]
    assert measured is not None
    assert measured <= bounds.notification
