"""Tests for the pluggable executors, including the remote work queue.

The remote tests fork real worker-agent processes against a coordinator
bound to a loopback auto-assigned port. Scenario functions live at module
level so the pickled task resolves inside the agents.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.campaign import (
    VERDICT_OK,
    CampaignSpec,
    LocalPoolExecutor,
    RemoteQueueExecutor,
    ScenarioResult,
    SerialExecutor,
    load_checkpoint,
    run_campaign,
    run_worker_agent,
)
from repro.errors import CampaignError

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="remote-executor tests fork worker agents",
)

SPEC = CampaignSpec(scenarios=6, seed=3)


def _fingerprint(results):
    return [
        (r.index, r.seed, r.verdict, r.nodes, r.crashes, r.latencies)
        for r in results
    ]


def quick(spec, index):
    return ScenarioResult(
        index=index,
        seed=spec.scenario_seed(index),
        verdict=VERDICT_OK,
        latencies=[index + 1],
    )


def slow_quick(spec, index):
    time.sleep(0.2)
    return quick(spec, index)


def die_on_flagged_index(spec, index):
    """Hard-kill the whole agent on scenario 2 — once."""
    flag = os.environ["EXECUTOR_TEST_FLAG"]
    if index == 2 and not os.path.exists(flag):
        with open(flag, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return quick(spec, index)


def _fork_agent(address, **kwargs):
    ctx = multiprocessing.get_context("fork")
    process = ctx.Process(
        target=run_worker_agent, args=address, kwargs=kwargs
    )
    process.start()
    return process


def _remote(**kwargs):
    kwargs.setdefault("host", "127.0.0.1")
    kwargs.setdefault("port", 0)
    kwargs.setdefault("startup_timeout", 30.0)
    return RemoteQueueExecutor(**kwargs)


# -- remote executor -----------------------------------------------------------


def test_remote_matches_serial_and_shards_checkpoints(tmp_path):
    checkpoint = str(tmp_path / "campaign.jsonl")
    executor = _remote()
    address = executor.listen()
    agents = [_fork_agent(address) for _ in range(2)]
    try:
        results = run_campaign(
            SPEC,
            executor=executor,
            scenario_fn=quick,
            checkpoint=checkpoint,
        )
    finally:
        for agent in agents:
            agent.join(10)
    serial = run_campaign(SPEC, workers=0, scenario_fn=quick)
    pool = run_campaign(
        SPEC, executor=LocalPoolExecutor(2), scenario_fn=quick
    )
    # Remote, local-pool and serial execution are indistinguishable in
    # the results: a function of (scenario, seed) only.
    assert _fingerprint(results) == _fingerprint(serial)
    assert _fingerprint(results) == _fingerprint(pool)
    assert all(agent.exitcode == 0 for agent in agents)
    # Each worker slot checkpointed into its own shard; the merge holds
    # every scenario exactly once.
    shards = sorted(p.name for p in tmp_path.iterdir())
    assert "campaign.0000.jsonl" in shards
    assert len(load_checkpoint(checkpoint, SPEC)) == SPEC.scenarios


def test_remote_requeues_work_from_killed_worker(tmp_path, monkeypatch):
    monkeypatch.setenv("EXECUTOR_TEST_FLAG", str(tmp_path / "flag"))
    executor = _remote(heartbeat_s=0.2, heartbeat_timeout=1.0)
    address = executor.listen()
    agents = [_fork_agent(address) for _ in range(2)]
    try:
        results = run_campaign(
            SPEC,
            executor=executor,
            retries=1,
            scenario_fn=die_on_flagged_index,
        )
    finally:
        for agent in agents:
            agent.join(15)
            if agent.is_alive():
                agent.terminate()
    # The SIGKILLed agent's scenario was requeued and finished elsewhere.
    assert _fingerprint(results) == _fingerprint(
        run_campaign(SPEC, workers=0, scenario_fn=quick)
    )


def test_remote_worker_joining_late_still_serves():
    executor = _remote(steal_after=2.0)
    address = executor.listen()

    def delayed_start():
        time.sleep(0.5)
        return _fork_agent(address)

    first = _fork_agent(address, max_items=1)
    results = None
    second_holder = {}

    import threading

    def launch_second():
        second_holder["agent"] = delayed_start()

    thread = threading.Thread(target=launch_second)
    thread.start()
    try:
        results = run_campaign(
            SPEC, executor=executor, scenario_fn=slow_quick
        )
    finally:
        thread.join()
        first.join(10)
        second = second_holder.get("agent")
        if second is not None:
            second.join(10)
            if second.is_alive():
                second.terminate()
    assert [r.index for r in results] == list(range(SPEC.scenarios))
    assert all(r.verdict == VERDICT_OK for r in results)


def test_remote_times_out_with_no_workers():
    executor = _remote(startup_timeout=0.5)
    executor.listen()
    with pytest.raises(CampaignError, match="worker"):
        run_campaign(SPEC, executor=executor, scenario_fn=quick)


def test_worker_agent_refuses_bad_address():
    with pytest.raises((CampaignError, OSError)):
        run_worker_agent("127.0.0.1", 1, authkey=b"x")


# -- local executors -----------------------------------------------------------


def test_explicit_executor_overrides_workers():
    seen = []

    class Recording(SerialExecutor):
        def execute(self, spec, pending, **kwargs):
            seen.append(len(pending))
            super().execute(spec, pending, **kwargs)

    results = run_campaign(
        SPEC, workers=4, executor=Recording(), scenario_fn=quick
    )
    assert seen == [SPEC.scenarios]
    assert len(results) == SPEC.scenarios


def test_local_pool_rejects_zero_workers():
    with pytest.raises(CampaignError):
        LocalPoolExecutor(0)


def test_executors_describe_themselves():
    assert "LocalPoolExecutor" in LocalPoolExecutor(2).describe()
    assert "workers=2" in LocalPoolExecutor(2).describe()
    assert SerialExecutor().describe() == "SerialExecutor"
    assert "RemoteQueueExecutor" in _remote().describe()
