"""Unit tests for time-unit helpers."""

from repro.sim.clock import MS, SEC, US, format_time, ms, ns, sec, us


def test_unit_constants_ratios():
    assert US == 1_000
    assert MS == 1_000 * US
    assert SEC == 1_000 * MS


def test_conversions_roundtrip():
    assert ns(500) == 500
    assert us(1) == 1_000
    assert ms(2.5) == 2_500_000
    assert sec(0.001) == ms(1)


def test_fractional_microseconds_round():
    assert us(2.3) == 2_300  # rounds, not truncates
    assert us(0.0002) == 0


def test_format_time_units():
    assert format_time(500) == "500ns"
    assert format_time(us(2)) == "2.000us"
    assert format_time(ms(3)) == "3.000ms"
    assert format_time(sec(4)) == "4.000s"


def test_format_time_negative():
    assert format_time(-ms(1)) == "-1.000ms"
