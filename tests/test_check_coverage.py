"""Tests for fingerprint deduplication and coverage-guided exploration."""

import random

import pytest

from repro.campaign import FingerprintStore, schedule_key
from repro.check import (
    CheckSweep,
    ScheduleBatch,
    ScheduleSpace,
    explore,
    explore_coverage,
    mutate_schedule,
    run_batch_scenario,
)
from repro.errors import CheckError
from repro.sim.rng import derive_seed

#: One crash offset, one frame type: a small but real schedule space.
SPACE = ScheduleSpace(
    nodes=4,
    members=3,
    crash_offsets_ms=(0.0,),
    frame_types=("FDA",),
    nth_frames=(0,),
)
SWEEP = CheckSweep(space=SPACE, depth=1)

#: Executions observed by ``counting`` scenario functions, keyed by test.
_EXECUTED = []


def counting_check_scenario(sweep, index):
    from repro.check.sweep import run_check_scenario

    _EXECUTED.append(index)
    return run_check_scenario(sweep, index)


def counting_batch_scenario(batch, index):
    _EXECUTED.append(batch.schedules[index])
    return run_batch_scenario(batch, index)


# -- fingerprint dedup in explore() --------------------------------------------


def test_sweep_rerun_against_same_store_executes_nothing(tmp_path):
    """The acceptance property: a sweep run twice against the same
    fingerprint store re-executes zero already-explored schedules."""
    path = str(tmp_path / "fp.jsonl")
    del _EXECUTED[:]
    with FingerprintStore(path) as store:
        first = explore(
            SWEEP,
            fingerprint_store=store,
            scenario_fn=counting_check_scenario,
        )
    first_executions = len(_EXECUTED)
    assert first_executions == SWEEP.scenarios
    assert first.deduplicated == 0

    del _EXECUTED[:]
    with FingerprintStore(path) as store:
        second = explore(
            SWEEP,
            fingerprint_store=store,
            scenario_fn=counting_check_scenario,
        )
    assert _EXECUTED == []  # zero re-executions
    assert second.deduplicated == SWEEP.scenarios
    assert [r.verdict for r in second.results] == [
        r.verdict for r in first.results
    ]
    assert [
        r.metrics["check"]["fingerprint"] for r in second.results
    ] == [r.metrics["check"]["fingerprint"] for r in first.results]
    assert "deduplicated" in second.summary()


def test_explore_without_store_always_executes():
    del _EXECUTED[:]
    explore(SWEEP, scenario_fn=counting_check_scenario)
    explore(SWEEP, scenario_fn=counting_check_scenario)
    assert len(_EXECUTED) == 2 * SWEEP.scenarios


def test_partial_store_runs_only_missing_schedules(tmp_path):
    path = str(tmp_path / "fp.jsonl")
    # Pre-record half the population as already explored.
    known = [SWEEP.schedule(i) for i in range(0, SWEEP.scenarios, 2)]
    with FingerprintStore(path) as store:
        for schedule in known:
            store.record(schedule_key(schedule), "stub-trace", "ok")
    del _EXECUTED[:]
    with FingerprintStore(path) as store:
        report = explore(
            SWEEP,
            fingerprint_store=store,
            scenario_fn=counting_check_scenario,
        )
    assert sorted(_EXECUTED) == [
        i for i in range(SWEEP.scenarios) if i % 2 == 1
    ]
    assert report.deduplicated == len(known)
    assert len(report.results) == SWEEP.scenarios


# -- schedule batches ----------------------------------------------------------


def test_schedule_batch_satisfies_spec_protocol():
    schedules = tuple(SWEEP.schedule(i) for i in range(3))
    batch = ScheduleBatch(schedules)
    assert batch.scenarios == 3
    assert [batch.scenario_seed(i) for i in range(3)] == [
        s.seed for s in schedules
    ]
    result = run_batch_scenario(batch, 1)
    assert result.index == 1
    assert result.seed == schedules[1].seed
    assert result.metrics["check"]["schedule"] == schedules[1].to_dict()


# -- mutation ------------------------------------------------------------------


def test_mutations_stay_admissible_and_structurally_new():
    rng = random.Random(7)
    parent = SPACE.schedule((), seed=0)
    for step in range(50):
        mutant = mutate_schedule(
            SPACE, parent, rng, seed=derive_seed(0, f"mutant/{step}")
        )
        if mutant is None:
            continue
        assert SPACE.admits(mutant.faults)
        assert mutant.faults != parent.faults
        parent = mutant


def test_mutation_is_deterministic_in_rng_state():
    parent = SPACE.schedule((SPACE.alphabet()[0],), seed=0)
    first = mutate_schedule(SPACE, parent, random.Random(11), seed=5)
    second = mutate_schedule(SPACE, parent, random.Random(11), seed=5)
    assert first == second


# -- coverage-guided exploration -----------------------------------------------


def test_coverage_respects_budget_and_records_novelty():
    store = FingerprintStore(None)
    report = explore_coverage(SPACE, budget=15, store=store, seed=7)
    assert report.executed <= 15
    assert report.executed == len(report.results)
    assert report.new_fingerprints == report.corpus_size
    assert report.new_fingerprints == store.trace_count
    assert len(store) == report.executed  # every run recorded
    assert "coverage sweep" in report.summary()
    store.close()


def test_coverage_is_deterministic():
    first = explore_coverage(SPACE, budget=15, seed=7)
    second = explore_coverage(SPACE, budget=15, seed=7)
    assert [r.verdict for r in first.results] == [
        r.verdict for r in second.results
    ]
    assert first.summary() == second.summary()


def test_coverage_rerun_never_reexecutes_explored_schedules(tmp_path):
    """Against a shared store, a second coverage run spends its budget
    only on schedules the first run never executed — the explored ones
    are all answered by the store before dispatch."""
    path = str(tmp_path / "fp.jsonl")
    del _EXECUTED[:]
    with FingerprintStore(path) as store:
        first = explore_coverage(
            SPACE,
            budget=10,
            store=store,
            seed=7,
            scenario_fn=counting_batch_scenario,
        )
    assert len(_EXECUTED) == first.executed > 0
    explored = {schedule_key(schedule) for schedule in _EXECUTED}
    del _EXECUTED[:]
    with FingerprintStore(path) as store:
        second = explore_coverage(
            SPACE,
            budget=10,
            store=store,
            seed=7,
            scenario_fn=counting_batch_scenario,
        )
    rerun = [s for s in _EXECUTED if schedule_key(s) in explored]
    assert rerun == []  # zero re-executions across runs
    assert second.deduplicated >= first.executed


def test_coverage_zero_budget_runs_nothing():
    report = explore_coverage(SPACE, budget=0)
    assert report.executed == 0
    assert report.results == []
    assert report.ok


def test_coverage_validates_arguments():
    with pytest.raises(CheckError):
        explore_coverage(SPACE, budget=-1)
    with pytest.raises(CheckError):
        explore_coverage(SPACE, budget=1, batch_size=0)
