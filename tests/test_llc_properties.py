"""Unit tests for the MCAN/LCAN property monitors."""

from repro.can.errormodel import FaultInjector, FaultKind
from repro.can.identifiers import MessageId, MessageType
from repro.llc.properties import (
    check_all_properties,
    check_lcan1_validity,
    check_lcan2_agreement,
    check_lcan3_duplicates,
    check_lcan4_inconsistent_degree,
    check_mcan1_broadcast,
    check_mcan2_error_detection,
    check_mcan3_omission_degree,
)
from repro.sim.clock import sec
from repro.sim.trace import TraceRecorder


def run_fault_free(raw_bus):
    net = raw_bus(3)
    net.layers[0].data_req(MessageId(MessageType.DATA, node=0), b"x")
    net.sim.run()
    return net


def test_all_properties_hold_fault_free(raw_bus):
    net = run_fault_free(raw_bus)
    report = check_all_properties(
        net.sim.trace,
        correct_nodes=[0, 1, 2],
        omission_degree=2,
        inconsistent_degree=1,
        window=sec(1),
    )
    assert report.ok, report.violations


def test_mcan1_flags_mismatched_delivery():
    trace = TraceRecorder()
    mid_a = MessageId(MessageType.DATA, node=0)
    mid_b = MessageId(MessageType.DATA, node=1)
    trace.record(10, "bus.tx", node=0, mid=mid_a, senders=(0,), kind="none", attempt=0)
    trace.record(10, "bus.deliver", node=1, mid=mid_b)
    report = check_mcan1_broadcast(trace)
    assert not report.ok


def test_mcan1_flags_delivery_without_transmission():
    trace = TraceRecorder()
    trace.record(10, "bus.deliver", node=1, mid=MessageId(MessageType.DATA, node=0))
    assert not check_mcan1_broadcast(trace).ok


def test_mcan2_flags_delivery_of_corrupted_frame():
    trace = TraceRecorder()
    mid = MessageId(MessageType.DATA, node=0)
    trace.record(
        10, "bus.tx", node=0, mid=mid, senders=(0,), kind="consistent", attempt=0
    )
    trace.record(10, "bus.deliver", node=1, mid=mid)
    assert not check_mcan2_error_detection(trace).ok


def test_mcan2_holds_in_simulation(raw_bus):
    injector = FaultInjector()
    injector.fault_on_transmission(0, FaultKind.CONSISTENT_OMISSION)
    net = raw_bus(3, injector=injector)
    net.layers[0].data_req(MessageId(MessageType.DATA, node=0), b"x")
    net.sim.run()
    assert check_mcan2_error_detection(net.sim.trace).ok


def test_mcan3_window_bound():
    trace = TraceRecorder()
    mid = MessageId(MessageType.DATA, node=0)
    for t in (0, 10, 20):
        trace.record(
            t, "bus.tx", node=0, mid=mid, senders=(0,), kind="consistent", attempt=0
        )
    assert check_mcan3_omission_degree(trace, omission_degree=3, window=100).ok
    assert not check_mcan3_omission_degree(trace, omission_degree=2, window=100).ok
    # A narrow window separates the omissions.
    assert check_mcan3_omission_degree(trace, omission_degree=1, window=5).ok


def test_lcan4_counts_only_inconsistent():
    trace = TraceRecorder()
    mid = MessageId(MessageType.DATA, node=0)
    trace.record(0, "bus.tx", node=0, mid=mid, senders=(0,), kind="consistent", attempt=0)
    trace.record(
        1, "bus.tx", node=0, mid=mid, senders=(0,), kind="inconsistent", attempt=0
    )
    assert check_lcan4_inconsistent_degree(trace, 1, window=100).ok
    assert not check_lcan4_inconsistent_degree(trace, 0, window=100).ok


def test_lcan1_flags_undelivered_message():
    trace = TraceRecorder()
    mid = MessageId(MessageType.DATA, node=0)
    trace.record(0, "bus.tx", node=0, mid=mid, senders=(0,), kind="none", attempt=0)
    assert not check_lcan1_validity(trace, [0, 1]).ok


def test_lcan2_flags_partial_delivery_with_correct_sender():
    trace = TraceRecorder()
    mid = MessageId(MessageType.DATA, node=0)
    trace.record(0, "bus.tx", node=0, mid=mid, senders=(0,), kind="none", attempt=0)
    trace.record(0, "bus.deliver", node=1, mid=mid)
    # Node 2 (correct) never received it and the sender never crashed.
    assert not check_lcan2_agreement(trace, [0, 1, 2]).ok


def test_lcan2_tolerates_partial_delivery_when_sender_crashed():
    trace = TraceRecorder()
    mid = MessageId(MessageType.DATA, node=0)
    trace.record(0, "bus.tx", node=0, mid=mid, senders=(0,), kind="inconsistent", attempt=0)
    trace.record(0, "bus.deliver", node=1, mid=mid)
    trace.record(1, "node.crash", node=0)
    assert check_lcan2_agreement(trace, [1, 2]).ok


def test_lcan3_flags_unexplained_duplicate():
    trace = TraceRecorder()
    mid = MessageId(MessageType.DATA, node=0)
    trace.record(0, "bus.tx", node=0, mid=mid, senders=(0,), kind="none", attempt=0)
    trace.record(0, "bus.deliver", node=1, mid=mid)
    trace.record(5, "bus.deliver", node=1, mid=mid)
    assert not check_lcan3_duplicates(trace).ok


def test_lcan3_accepts_duplicate_after_inconsistency(raw_bus):
    injector = FaultInjector()
    injector.fault_on_transmission(
        0, FaultKind.INCONSISTENT_OMISSION, accepting=[2]
    )
    net = raw_bus(3, injector=injector)
    net.layers[0].data_req(MessageId(MessageType.DATA, node=0), b"x")
    net.sim.run()
    assert check_lcan3_duplicates(net.sim.trace).ok


def test_properties_hold_under_scripted_faults(raw_bus):
    injector = FaultInjector()
    injector.fault_on_transmission(0, FaultKind.CONSISTENT_OMISSION)
    injector.fault_on_transmission(
        2, FaultKind.INCONSISTENT_OMISSION, accepting=[1]
    )
    net = raw_bus(3, injector=injector)
    for ref in range(4):
        net.layers[0].data_req(MessageId(MessageType.DATA, node=0, ref=ref), b"")
    net.sim.run()
    report = check_all_properties(
        net.sim.trace,
        correct_nodes=[0, 1, 2],
        omission_degree=2,
        inconsistent_degree=1,
        window=sec(10),
    )
    assert report.ok, report.violations
