"""Unit tests for the Fig. 10 analytical bandwidth model."""

import pytest

from repro.analysis.bandwidth import BandwidthModel
from repro.errors import ConfigurationError


def test_paper_parameters_accepted():
    model = BandwidthModel()  # n=32, b=8, f=4 — the Fig. 10 annotation
    assert model.population == 32
    assert model.lifesign_nodes == 8
    assert model.crash_failures == 4


def test_validation():
    with pytest.raises(ConfigurationError):
        BandwidthModel(population=0)
    with pytest.raises(ConfigurationError):
        BandwidthModel(population=4, lifesign_nodes=5)
    with pytest.raises(ConfigurationError):
        BandwidthModel(bit_rate=0)


def test_curves_decrease_with_tm():
    """Fig. 10 shape: utilization falls hyperbolically with Tm."""
    model = BandwidthModel()
    for label, curve in model.figure10().items():
        assert curve == sorted(curve, reverse=True), label


def test_curves_are_ordered_by_scenario():
    """no changes < crash failures < single join/leave < massive join/leave."""
    model = BandwidthModel()
    curves = model.figure10(tm_values_ms=[30, 60, 90])
    for i in range(3):
        assert (
            curves["no msh. changes"][i]
            < curves["f crash failures"][i]
            < curves["join/leave event"][i]
            < curves["multiple join/leave"][i]
        )


def test_magnitudes_match_paper_band():
    """At Tm=30ms the paper reads ~1.5% .. ~14% across the four curves."""
    model = BandwidthModel()
    curves = model.figure10(tm_values_ms=[30])
    assert 0.005 < curves["no msh. changes"][0] < 0.03
    assert 0.06 < curves["multiple join/leave"][0] < 0.16


def test_quiescent_cost_is_lifesigns_only():
    model = BandwidthModel()
    breakdown = model.breakdown(crashes=0, join_leaves=0)
    assert breakdown.fda_bits == 0
    assert breakdown.rha_bits == 0
    assert breakdown.total_bits == model.lifesign_bits()


def test_fda_cost_linear_in_crashes():
    model = BandwidthModel()
    assert model.fda_bits(4) == 4 * model.fda_bits(1)


def test_rha_cost_zero_without_requests():
    assert BandwidthModel().rha_bits(0) == 0


def test_rha_divergence_bounded_by_j():
    """Distinct RHV values saturate at j+1 — extra requests only add their
    own request frames (the Section 6.5 footnote's linear regime)."""
    model = BandwidthModel(inconsistent_degree=2)
    delta_small = model.rha_bits(2) - model.rha_bits(1)
    delta_large = model.rha_bits(20) - model.rha_bits(19)
    assert delta_large == model.remote_frame_bits
    assert delta_small > delta_large


def test_marginal_join_leave_near_paper_value():
    """Section 6.5 footnote: ~0.4% per request at Tm >= 25 ms (1 Mbps)."""
    marginal = BandwidthModel().marginal_join_leave_utilization(25)
    assert 0.001 < marginal < 0.006


def test_utilization_inverse_in_tm():
    model = BandwidthModel()
    assert model.utilization(30, 4, 20) == pytest.approx(
        3 * model.utilization(90, 4, 20)
    )


def test_extended_frames_cost_more():
    standard = BandwidthModel(extended=False)
    extended = BandwidthModel(extended=True)
    assert extended.remote_frame_bits > standard.remote_frame_bits
    assert extended.utilization(50, 4, 20) > standard.utilization(50, 4, 20)


def test_breakdown_utilization_validates_tm():
    breakdown = BandwidthModel().breakdown(0, 0)
    with pytest.raises(ConfigurationError):
        breakdown.utilization(0)
