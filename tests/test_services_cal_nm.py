"""Unit tests for CAL/CANopen node guarding (Section 6.6 baseline)."""

import pytest

from repro.errors import ConfigurationError
from repro.services.cal_nm import CalNodeGuarding
from repro.sim.clock import ms


def wire(raw_bus, node_count=5, guard_time=ms(20), life_time_factor=2):
    net = raw_bus(node_count)
    services = {}
    slaves = list(range(1, node_count))
    for node_id, layer in net.layers.items():
        services[node_id] = CalNodeGuarding(
            layer,
            net.timers[node_id],
            net.sim,
            master_id=0,
            slave_ids=slaves,
            guard_time=guard_time,
            life_time_factor=life_time_factor,
        )
        services[node_id].start()
    return net, services


def test_no_false_detection_when_healthy(raw_bus):
    net, services = wire(raw_bus)
    net.sim.run_until(ms(1000))
    assert services[0].detected == {}


def test_slaves_answer_polls(raw_bus):
    net, services = wire(raw_bus)
    net.sim.run_until(ms(500))
    assert services[0].polls_sent > 0
    assert all(services[s].statuses_sent > 0 for s in range(1, 5))


def test_master_detects_crashed_slave(raw_bus):
    net, services = wire(raw_bus)
    net.sim.run_until(ms(500))
    net.controllers[3].crash()
    crash_time = net.sim.now
    net.sim.run_until(ms(2000))
    assert 3 in services[0].detected
    latency = services[0].detected[3] - crash_time
    # Bounded by the node life time plus one polling round.
    assert latency <= services[0].life_time + ms(100)


def test_failure_listener_fires_at_master_only(raw_bus):
    net, services = wire(raw_bus)
    hits = {n: [] for n in services}
    for node_id, service in services.items():
        service.on_failure(hits[node_id].append)
    net.sim.run_until(ms(500))
    net.controllers[2].crash()
    net.sim.run_until(ms(2000))
    assert hits[0] == [2]
    assert all(hits[n] == [] for n in range(1, 5))


def test_master_crash_disables_detection(raw_bus):
    """The paper's criticism of the centralized scheme."""
    net, services = wire(raw_bus)
    net.sim.run_until(ms(500))
    net.controllers[0].crash()  # the master dies
    net.controllers[3].crash()  # then a slave dies
    net.sim.run_until(ms(3000))
    assert all(not services[n].detected for n in range(1, 5))


def test_detection_latency_scales_with_population(raw_bus):
    small_net, small = wire(raw_bus, node_count=3)
    large_net, large = wire(raw_bus, node_count=8)
    assert large[0].life_time > small[0].life_time


def test_config_validation(raw_bus):
    net = raw_bus(2)
    with pytest.raises(ConfigurationError):
        CalNodeGuarding(net.layers[0], net.timers[0], net.sim, 0, [1], guard_time=0)
    with pytest.raises(ConfigurationError):
        CalNodeGuarding(
            net.layers[0], net.timers[0], net.sim, 0, [0, 1], guard_time=ms(10)
        )
    with pytest.raises(ConfigurationError):
        CalNodeGuarding(
            net.layers[0],
            net.timers[0],
            net.sim,
            0,
            [1],
            guard_time=ms(10),
            life_time_factor=0,
        )
