"""Unit tests for campaign specs and scenario results."""

import pytest

from repro.campaign import (
    VERDICT_OK,
    VERDICT_VIOLATION,
    VERDICTS,
    CampaignSpec,
    ScenarioResult,
)
from repro.errors import ConfigurationError
from repro.sim.clock import ms
from repro.sim.rng import derive_seed


def test_scenario_seeds_derive_from_root_seed():
    spec = CampaignSpec(scenarios=5, seed=42)
    for index in range(5):
        assert spec.scenario_seed(index) == derive_seed(42, f"scenario/{index}")


def test_scenario_seeds_are_distinct_and_stable():
    spec = CampaignSpec(scenarios=50, seed=9)
    seeds = [spec.scenario_seed(i) for i in range(50)]
    assert len(set(seeds)) == 50
    assert seeds == [CampaignSpec(scenarios=50, seed=9).scenario_seed(i) for i in range(50)]


def test_different_root_seeds_give_different_scenarios():
    assert CampaignSpec(scenarios=1, seed=1).scenario_seed(0) != CampaignSpec(
        scenarios=1, seed=2
    ).scenario_seed(0)


def test_config_reflects_spec_parameters():
    spec = CampaignSpec(scenarios=1, tm_ms=40.0, thb_ms=8.0, tjoin_wait_ms=120.0)
    config = spec.config()
    assert config.tm == ms(40)
    assert config.thb == ms(8)
    assert config.tjoin_wait == ms(120)
    assert config.capacity == 16


def test_spec_roundtrips_through_dict():
    spec = CampaignSpec(scenarios=7, seed=3, node_min=4, node_max=6)
    assert CampaignSpec.from_dict(spec.to_dict()) == spec


@pytest.mark.parametrize(
    "kwargs",
    [
        {"scenarios": 0},
        {"scenarios": 1, "node_min": 8, "node_max": 6},
        {"scenarios": 1, "node_min": 1},
        {"scenarios": 1, "node_max": 20, "capacity": 16},
        {"scenarios": 1, "crash_min": 3, "crash_max": 1},
        {"scenarios": 1, "consistent_probability": 0.8, "inconsistent_probability": 0.5},
        {"scenarios": 1, "inconsistent_probability": -0.1},
        {"scenarios": 1, "run_ms": 0},
        {"scenarios": 1, "backend": "raft", "monitors": False},
        {"scenarios": 1, "segments": 0},
        {"scenarios": 1, "segments": 7},  # > node_min
        # the online monitors encode CANELy's guarantees
        {"scenarios": 1, "backend": "swim"},
    ],
)
def test_invalid_specs_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        CampaignSpec(**kwargs)


def test_backend_and_segments_roundtrip_through_dict():
    spec = CampaignSpec(
        scenarios=2, backend="swim", segments=2, monitors=False
    )
    assert spec.backend == "swim"
    assert spec.segments == 2
    assert CampaignSpec.from_dict(spec.to_dict()) == spec


def test_result_roundtrips_through_dict():
    result = ScenarioResult(
        index=3,
        seed=123,
        verdict=VERDICT_VIOLATION,
        nodes=8,
        crashes=2,
        latencies=[5, 9],
        missed=1,
        injected_omissions=4,
        injected_inconsistent=1,
        metrics={"bus.tx": 12},
        detail="boom",
        violation_slice=[{"category": "msh.view"}],
        attempts=2,
        elapsed_s=0.5,
    )
    assert ScenarioResult.from_dict(result.to_dict()) == result


def test_result_from_dict_ignores_unknown_keys():
    result = ScenarioResult.from_dict(
        {"index": 1, "seed": 2, "verdict": VERDICT_OK, "someday": "maybe"}
    )
    assert result.index == 1
    assert result.ok


def test_verdict_vocabulary():
    assert VERDICT_OK in VERDICTS
    assert len(set(VERDICTS)) == 6
    assert not ScenarioResult(index=0, seed=0, verdict=VERDICT_VIOLATION).ok


def test_result_qos_summary_roundtrips_through_dict():
    result = ScenarioResult(
        index=0,
        seed=7,
        verdict=VERDICT_OK,
        qos={"detection_p50_ms": 13.486, "mistakes": 0, "flaps": 0},
    )
    restored = ScenarioResult.from_dict(result.to_dict())
    assert restored == result
    assert restored.qos["detection_p50_ms"] == 13.486
    # An old checkpoint line without the field loads with an empty qos.
    legacy = ScenarioResult.from_dict(
        {"index": 1, "seed": 2, "verdict": VERDICT_OK}
    )
    assert legacy.qos == {}
